(* Tests for the virtual-circuit baseline: cell formats, call setup and
   data transfer, hop-by-hop reliability, and the defining weakness —
   per-path switch state that dies with links and nodes. *)

let check = Alcotest.check

module Cell = Vc.Cell

(* --- Cell formats ------------------------------------------------------- *)

let test_cell_roundtrips () =
  let cases =
    [
      Cell.Setup { vci = 5; src = 1; path = [ 2; 3; 4 ] };
      Cell.Accept { vci = 5 };
      Cell.Clear { vci = 9; reason = Cell.Link_failure };
      Cell.Data { vci = 3; seq = 1234; payload = Bytes.of_string "cells!" };
      Cell.Hop_ack { vci = 3; seq = 1235 };
    ]
  in
  List.iter
    (fun cell ->
      match Cell.decode (Cell.encode cell) with
      | Ok c ->
          check Alcotest.bool
            (Format.asprintf "roundtrip %a" Cell.pp cell)
            true (c = cell)
      | Error _ -> Alcotest.failf "decode failed: %a" Cell.pp cell)
    cases

let test_cell_garbage () =
  match Cell.decode (Bytes.of_string "\xff\x00") with
  | Error (`Bad_header _) -> ()
  | Error `Truncated | Ok _ -> Alcotest.fail "expected Bad_header"

let test_clear_reasons_roundtrip () =
  List.iter
    (fun r ->
      check Alcotest.bool "reason code roundtrip" true
        (Cell.clear_reason_of_int (Cell.clear_reason_to_int r) = Some r))
    [
      Cell.Remote_clear; Cell.Link_failure; Cell.Node_failure; Cell.No_route;
      Cell.Refused; Cell.Hop_timeout;
    ]

(* --- Fabric fixtures ------------------------------------------------------ *)

(* A chain: h_a -- s1 -- s2 -- h_b where every node is a switch and the
   two ends also run endpoints. *)
type chain = {
  eng : Engine.t;
  net : Netsim.t;
  fabric : Vc.t;
  a : Netsim.node_id;
  s1 : Netsim.node_id;
  s2 : Netsim.node_id;
  b : Netsim.node_id;
  l_a1 : Netsim.link_id;
  l_12 : Netsim.link_id;
  l_2b : Netsim.link_id;
}

let chain ?(profile = Netsim.profile "leg" ~delay_us:2_000) ?config () =
  let eng = Engine.create () in
  let net = Netsim.create ~seed:11 eng in
  let a = Netsim.add_node net "a" in
  let s1 = Netsim.add_node net "s1" in
  let s2 = Netsim.add_node net "s2" in
  let b = Netsim.add_node net "b" in
  let l_a1 = Netsim.add_link net profile a s1 in
  let l_12 = Netsim.add_link net profile s1 s2 in
  let l_2b = Netsim.add_link net profile s2 b in
  let fabric = Vc.create ?config net in
  List.iter (Vc.attach fabric) [ a; s1; s2; b ];
  { eng; net; fabric; a; s1; s2; b; l_a1; l_12; l_2b }

let test_call_setup_and_accept () =
  let c = chain () in
  let accepted = ref false in
  let server_circuit = ref None in
  Vc.listen c.fabric c.b (fun circuit -> server_circuit := Some circuit);
  let circuit =
    Vc.call c.fabric ~src:c.a ~dst:c.b
      ~on_accept:(fun () -> accepted := true)
      ()
  in
  Engine.run ~until:1_000_000 c.eng;
  check Alcotest.bool "accepted" true !accepted;
  check Alcotest.bool "open" true (Vc.is_open circuit);
  check Alcotest.bool "server got circuit" true (!server_circuit <> None);
  (* Every switch on the path holds state — including the endpoints'
     own nodes. *)
  check Alcotest.bool "state at s1" true
    (Vc.switch_state_count c.fabric c.s1 >= 2);
  check Alcotest.bool "state at s2" true
    (Vc.switch_state_count c.fabric c.s2 >= 2);
  check Alcotest.int "stats" 1 (Vc.stats c.fabric).Vc.calls_established

let test_data_transfer () =
  let c = chain () in
  let received = ref [] in
  Vc.listen c.fabric c.b (fun circuit ->
      Vc.on_data circuit (fun d -> received := Bytes.to_string d :: !received));
  let circuit = Vc.call c.fabric ~src:c.a ~dst:c.b () in
  Engine.after c.eng 100_000 (fun () ->
      for i = 1 to 10 do
        ignore (Vc.send circuit (Bytes.of_string (Printf.sprintf "cell-%02d" i)))
      done);
  Engine.run ~until:2_000_000 c.eng;
  check Alcotest.int "all delivered" 10 (List.length !received);
  (* Ordered delivery. *)
  check (Alcotest.list Alcotest.string) "in order"
    (List.init 10 (fun i -> Printf.sprintf "cell-%02d" (i + 1)))
    (List.rev !received)

let test_bidirectional_data () =
  let c = chain () in
  let at_b = ref 0 and at_a = ref 0 in
  Vc.listen c.fabric c.b (fun circuit ->
      Vc.on_data circuit (fun _ ->
          incr at_b;
          ignore (Vc.send circuit (Bytes.of_string "reply"))));
  let circuit = Vc.call c.fabric ~src:c.a ~dst:c.b () in
  Vc.on_data circuit (fun _ -> incr at_a);
  Engine.after c.eng 100_000 (fun () ->
      ignore (Vc.send circuit (Bytes.of_string "query")));
  Engine.run ~until:2_000_000 c.eng;
  check Alcotest.int "request" 1 !at_b;
  check Alcotest.int "reply" 1 !at_a

let test_hop_reliability_on_lossy_link () =
  (* 20% loss per hop: hop-by-hop go-back-N must still deliver every cell
     in order. *)
  let c = chain ~profile:(Netsim.profile "lossy" ~delay_us:1_000 ~loss:0.2) () in
  let received = ref 0 in
  let last = ref (-1) in
  let ordered = ref true in
  Vc.listen c.fabric c.b (fun circuit ->
      Vc.on_data circuit (fun d ->
          let n = int_of_string (Bytes.to_string d) in
          if n <= !last then ordered := false;
          last := n;
          incr received));
  (* Call setup cells are unreliable; on a 20%-loss path the call may need
     several attempts (as a real subscriber would redial). *)
  let circuit = ref None in
  let rec dial attempts =
    if attempts < 50 then begin
      let cc =
        Vc.call c.fabric ~src:c.a ~dst:c.b
          ~on_clear:(fun _ ->
            Engine.after c.eng 50_000 (fun () ->
                match !circuit with
                | Some cx when Vc.is_open cx -> ()
                | Some _ | None -> dial (attempts + 1)))
          ()
      in
      circuit := Some cc
    end
  in
  dial 0;
  let sent = ref 0 in
  let rec feed () =
    match !circuit with
    | Some cx when Vc.is_open cx && !sent < 100 ->
        ignore (Vc.send cx (Bytes.of_string (string_of_int !sent)));
        incr sent;
        Engine.after c.eng 10_000 feed
    | Some _ | None -> if !sent < 100 then Engine.after c.eng 100_000 feed
  in
  Engine.after c.eng 200_000 feed;
  Engine.run ~until:60_000_000 c.eng;
  check Alcotest.int "all delivered" 100 !received;
  check Alcotest.bool "in order" true !ordered;
  check Alcotest.bool "hop retransmissions happened" true
    ((Vc.stats c.fabric).Vc.hop_retransmits > 0)

let test_link_failure_clears_call () =
  let c = chain () in
  let cleared = ref None in
  Vc.listen c.fabric c.b (fun _ -> ());
  let circuit =
    Vc.call c.fabric ~src:c.a ~dst:c.b
      ~on_clear:(fun r -> cleared := Some r)
      ()
  in
  Engine.run ~until:500_000 c.eng;
  check Alcotest.bool "established" true (Vc.is_open circuit);
  (* Cut the middle link: the circuit must die — state in the network. *)
  Netsim.set_link_up c.net c.l_12 false;
  Engine.run ~until:3_000_000 c.eng;
  check Alcotest.bool "circuit dead" false (Vc.is_open circuit);
  (match !cleared with
  | Some Cell.Link_failure -> ()
  | Some r -> Alcotest.failf "wrong reason: %a" Cell.pp_clear_reason r
  | None -> Alcotest.fail "never cleared");
  (* Switch state on the healthy side is released too. *)
  check Alcotest.int "s1 cleaned" 0 (Vc.switch_state_count c.fabric c.s1)

let test_node_crash_clears_call () =
  let c = chain () in
  let cleared = ref None in
  Vc.listen c.fabric c.b (fun _ -> ());
  let circuit =
    Vc.call c.fabric ~src:c.a ~dst:c.b
      ~on_clear:(fun r -> cleared := Some r)
      ()
  in
  Engine.run ~until:500_000 c.eng;
  check Alcotest.bool "established" true (Vc.is_open circuit);
  Netsim.set_node_up c.net c.s2 false;
  Engine.run ~until:5_000_000 c.eng;
  check Alcotest.bool "circuit dead" false (Vc.is_open circuit);
  match !cleared with
  | Some Cell.Node_failure | Some Cell.Hop_timeout -> ()
  | Some r -> Alcotest.failf "wrong reason: %a" Cell.pp_clear_reason r
  | None -> Alcotest.fail "never cleared"

let test_refused_when_no_listener () =
  let c = chain () in
  let cleared = ref None in
  let circuit =
    Vc.call c.fabric ~src:c.a ~dst:c.b
      ~on_clear:(fun r -> cleared := Some r)
      ()
  in
  Engine.run ~until:1_000_000 c.eng;
  check Alcotest.bool "not open" false (Vc.is_open circuit);
  match !cleared with
  | Some Cell.Refused -> ()
  | Some r -> Alcotest.failf "wrong reason: %a" Cell.pp_clear_reason r
  | None -> Alcotest.fail "never cleared"

let test_no_route () =
  let eng = Engine.create () in
  let net = Netsim.create eng in
  let a = Netsim.add_node net "a" in
  let b = Netsim.add_node net "b" in
  (* No link between them at all. *)
  let fabric = Vc.create net in
  Vc.attach fabric a;
  Vc.attach fabric b;
  let cleared = ref None in
  let circuit =
    Vc.call fabric ~src:a ~dst:b ~on_clear:(fun r -> cleared := Some r) ()
  in
  Engine.run ~until:100_000 eng;
  check Alcotest.bool "not open" false (Vc.is_open circuit);
  match !cleared with
  | Some Cell.No_route -> ()
  | Some r -> Alcotest.failf "wrong reason: %a" Cell.pp_clear_reason r
  | None -> Alcotest.fail "never cleared"

let test_local_clear_propagates () =
  let c = chain () in
  let server_cleared = ref false in
  Vc.listen c.fabric c.b (fun circuit ->
      Vc.on_clear circuit (fun _ -> server_cleared := true));
  let circuit = Vc.call c.fabric ~src:c.a ~dst:c.b () in
  Engine.after c.eng 500_000 (fun () -> Vc.clear circuit);
  Engine.run ~until:2_000_000 c.eng;
  check Alcotest.bool "remote notified" true !server_cleared;
  check Alcotest.int "s1 state gone" 0 (Vc.switch_state_count c.fabric c.s1);
  check Alcotest.int "s2 state gone" 0 (Vc.switch_state_count c.fabric c.s2);
  check Alcotest.int "total state" 0 (Vc.total_switch_state c.fabric)

let test_max_payload_positive () =
  let c = chain () in
  Vc.listen c.fabric c.b (fun _ -> ());
  let circuit = Vc.call c.fabric ~src:c.a ~dst:c.b () in
  Engine.run ~until:500_000 c.eng;
  check Alcotest.int "mtu minus header" (1500 - Cell.data_header_size)
    (Vc.max_payload c.fabric circuit)


let test_switch_buffer_backpressure () =
  (* A tiny per-hop buffer: the sender sees [send] refuse once the hop
     queue fills — bounded switch memory, honestly surfaced. *)
  let config = { Vc.default_config with Vc.switch_buffer_cells = 4 } in
  let c =
    chain ~profile:(Netsim.profile "slow" ~bandwidth_bps:8_000 ~delay_us:0)
      ~config ()
  in
  Vc.listen c.fabric c.b (fun _ -> ());
  let circuit = Vc.call c.fabric ~src:c.a ~dst:c.b () in
  Engine.run ~until:500_000 c.eng;
  check Alcotest.bool "open" true (Vc.is_open circuit);
  let accepted = ref 0 and refused = ref 0 in
  for _ = 1 to 20 do
    if Vc.send circuit (Bytes.make 100 'x') then incr accepted else incr refused
  done;
  check Alcotest.int "buffer bound respected" 4 !accepted;
  check Alcotest.int "rest refused" 16 !refused

let () =
  Alcotest.run "vc"
    [
      ( "cells",
        [
          Alcotest.test_case "roundtrips" `Quick test_cell_roundtrips;
          Alcotest.test_case "garbage" `Quick test_cell_garbage;
          Alcotest.test_case "clear reasons" `Quick test_clear_reasons_roundtrip;
        ] );
      ( "calls",
        [
          Alcotest.test_case "setup/accept" `Quick test_call_setup_and_accept;
          Alcotest.test_case "data transfer" `Quick test_data_transfer;
          Alcotest.test_case "bidirectional" `Quick test_bidirectional_data;
          Alcotest.test_case "refused" `Quick test_refused_when_no_listener;
          Alcotest.test_case "no route" `Quick test_no_route;
          Alcotest.test_case "local clear" `Quick test_local_clear_propagates;
          Alcotest.test_case "max payload" `Quick test_max_payload_positive;
          Alcotest.test_case "switch buffer backpressure" `Quick
            test_switch_buffer_backpressure;
        ] );
      ( "reliability-and-failure",
        [
          Alcotest.test_case "lossy hops" `Quick test_hop_reliability_on_lossy_link;
          Alcotest.test_case "link failure clears" `Quick test_link_failure_clears_call;
          Alcotest.test_case "node crash clears" `Quick test_node_crash_clears_call;
        ] );
    ]
