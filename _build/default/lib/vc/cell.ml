module W = Stdext.Bytio.W
module R = Stdext.Bytio.R

type clear_reason =
  | Remote_clear
  | Link_failure
  | Node_failure
  | No_route
  | Refused
  | Hop_timeout

let clear_reason_to_int = function
  | Remote_clear -> 0
  | Link_failure -> 1
  | Node_failure -> 2
  | No_route -> 3
  | Refused -> 4
  | Hop_timeout -> 5

let clear_reason_of_int = function
  | 0 -> Some Remote_clear
  | 1 -> Some Link_failure
  | 2 -> Some Node_failure
  | 3 -> Some No_route
  | 4 -> Some Refused
  | 5 -> Some Hop_timeout
  | _ -> None

let pp_clear_reason fmt r =
  Format.pp_print_string fmt
    (match r with
    | Remote_clear -> "remote-clear"
    | Link_failure -> "link-failure"
    | Node_failure -> "node-failure"
    | No_route -> "no-route"
    | Refused -> "refused"
    | Hop_timeout -> "hop-timeout")

type t =
  | Setup of { vci : int; src : int; path : int list }
  | Accept of { vci : int }
  | Clear of { vci : int; reason : clear_reason }
  | Data of { vci : int; seq : int; payload : bytes }
  | Hop_ack of { vci : int; seq : int }

type error = [ `Truncated | `Bad_header of string ]

let data_header_size = 5

let encode = function
  | Setup { vci; src; path } ->
      let w = W.create (6 + (2 * List.length path)) in
      W.u8 w 1;
      W.u16 w vci;
      W.u16 w src;
      W.u8 w (List.length path);
      List.iter (fun n -> W.u16 w n) path;
      W.contents w
  | Accept { vci } ->
      let w = W.create 3 in
      W.u8 w 2;
      W.u16 w vci;
      W.contents w
  | Clear { vci; reason } ->
      let w = W.create 4 in
      W.u8 w 3;
      W.u16 w vci;
      W.u8 w (clear_reason_to_int reason);
      W.contents w
  | Data { vci; seq; payload } ->
      let w = W.create (5 + Bytes.length payload) in
      W.u8 w 4;
      W.u16 w vci;
      W.u16 w (seq land 0xffff);
      W.bytes w payload;
      W.contents w
  | Hop_ack { vci; seq } ->
      let w = W.create 5 in
      W.u8 w 5;
      W.u16 w vci;
      W.u16 w (seq land 0xffff);
      W.contents w

let decode buf =
  let r = R.of_bytes buf in
  try
    match R.u8 r with
    | 1 ->
        let vci = R.u16 r in
        let src = R.u16 r in
        let n = R.u8 r in
        let path = List.init n (fun _ -> R.u16 r) in
        Ok (Setup { vci; src; path })
    | 2 -> Ok (Accept { vci = R.u16 r })
    | 3 -> (
        let vci = R.u16 r in
        match clear_reason_of_int (R.u8 r) with
        | Some reason -> Ok (Clear { vci; reason })
        | None -> Error (`Bad_header "unknown clear reason"))
    | 4 ->
        let vci = R.u16 r in
        let seq = R.u16 r in
        Ok (Data { vci; seq; payload = R.bytes r (R.remaining r) })
    | 5 ->
        let vci = R.u16 r in
        let seq = R.u16 r in
        Ok (Hop_ack { vci; seq })
    | ty -> Error (`Bad_header (Printf.sprintf "unknown cell type %d" ty))
  with Stdext.Bytio.Truncated -> Error `Truncated

let pp fmt = function
  | Setup { vci; src; path } ->
      Format.fprintf fmt "setup vci=%d src=%d path=[%s]" vci src
        (String.concat "," (List.map string_of_int path))
  | Accept { vci } -> Format.fprintf fmt "accept vci=%d" vci
  | Clear { vci; reason } ->
      Format.fprintf fmt "clear vci=%d (%a)" vci pp_clear_reason reason
  | Data { vci; seq; payload } ->
      Format.fprintf fmt "data vci=%d seq=%d len=%d" vci seq
        (Bytes.length payload)
  | Hop_ack { vci; seq } -> Format.fprintf fmt "hop-ack vci=%d seq=%d" vci seq
