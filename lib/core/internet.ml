module Addr = Packet.Addr
module Prefix = Addr.Prefix

type routing_mode = Static | Distance_vector | Link_state

type host = {
  h_node : Netsim.node_id;
  h_ip : Ip.Stack.t;
  h_udp : Udp.t;
  h_tcp : Tcp.t;
}

type gateway = {
  g_node : Netsim.node_id;
  g_ip : Ip.Stack.t;
  g_udp : Udp.t;
  mutable g_dv : Routing.Dv.t option;
  mutable g_ls : Routing.Ls.t option;
}

type node_kind = Host of host | Gateway of gateway

type link_info = {
  li_id : Netsim.link_id;
  li_subnet : Prefix.t;
  li_a : Netsim.node_id;
  li_b : Netsim.node_id;
  li_addr_a : Addr.t;
  li_addr_b : Addr.t;
}

type t = {
  eng : Engine.t;
  nsim : Netsim.t;
  routing : routing_mode;
  tcp_config : Tcp.config;
  dv_config : Routing.Dv.config;
  ls_config : Routing.Ls.config;
  mutable kinds : (Netsim.node_id * node_kind) list;
  mutable names : (string * Netsim.node_id) list;
  mutable links : link_info list;
  mutable started : bool;
}

let create ?(seed = 42) ?(routing = Static) ?(tcp_config = Tcp.default_config)
    ?(dv_config = Routing.Dv.default_config)
    ?(ls_config = Routing.Ls.default_config) () =
  let eng = Engine.create () in
  {
    eng;
    nsim = Netsim.create ~seed eng;
    routing;
    tcp_config;
    dv_config;
    ls_config;
    kinds = [];
    names = [];
    links = [];
    started = false;
  }

let engine t = t.eng
let net t = t.nsim

let stack_of t node =
  match List.assoc_opt node t.kinds with
  | Some (Host h) -> h.h_ip
  | Some (Gateway g) -> g.g_ip
  | None -> invalid_arg "Internet: unknown node"

let kind_of t node = List.assoc_opt node t.kinds

let add_host t name =
  let node = Netsim.add_node t.nsim name in
  let ip = Ip.Stack.create ~forwarding:false t.nsim node in
  let udp = Udp.create ip in
  let tcp = Tcp.create ~config:t.tcp_config ip in
  let h = { h_node = node; h_ip = ip; h_udp = udp; h_tcp = tcp } in
  t.kinds <- (node, Host h) :: t.kinds;
  t.names <- (name, node) :: t.names;
  h

let add_gateway t name =
  let node = Netsim.add_node t.nsim name in
  let ip = Ip.Stack.create ~forwarding:true t.nsim node in
  let udp = Udp.create ip in
  let g = { g_node = node; g_ip = ip; g_udp = udp; g_dv = None; g_ls = None } in
  t.kinds <- (node, Gateway g) :: t.kinds;
  t.names <- (name, node) :: t.names;
  g

let node_of_name t name =
  match List.assoc_opt name t.names with
  | Some n -> n
  | None -> raise Not_found

let host t name =
  match kind_of t (node_of_name t name) with
  | Some (Host h) -> h
  | Some (Gateway _) | None -> raise Not_found

let gateway t name =
  match kind_of t (node_of_name t name) with
  | Some (Gateway g) -> g
  | Some (Host _) | None -> raise Not_found

(* Each link gets 10.x.y.0/24 where (x, y) encode the link index. *)
let subnet_of_index k =
  Prefix.make (Addr.v 10 (((k + 1) lsr 8) land 0xff) ((k + 1) land 0xff) 0) 24

let host_default_route t (h : host) iface =
  (* Hosts send everything to the gateway at the other end of their first
     link; the gateway address is .1 or .2 opposite ours. *)
  let peer_node, peer_iface = Netsim.peer t.nsim h.h_node iface in
  match kind_of t peer_node with
  | Some (Gateway g) -> (
      match Ip.Stack.iface_addr g.g_ip peer_iface with
      | Some gw_addr ->
          let table = Ip.Stack.table h.h_ip in
          if Ip.Route_table.find table Prefix.default = None then
            Ip.Route_table.add table
              {
                Ip.Route_table.prefix = Prefix.default;
                iface;
                next_hop = Some gw_addr;
                metric = 10;
              }
      | None -> ())
  | Some (Host _) | None -> ()

let connect t profile na nb =
  let id = Netsim.add_link t.nsim profile na nb in
  let subnet = subnet_of_index id in
  let base = Prefix.network subnet in
  let addr_a = Addr.succ base in
  let addr_b = Addr.succ addr_a in
  let (a_node, a_iface), (b_node, b_iface) = Netsim.endpoints t.nsim id in
  let lo_first = a_node <= b_node in
  let addr_of_side node = if (node = a_node) = lo_first then addr_a else addr_b in
  Ip.Stack.configure_iface (stack_of t a_node) a_iface
    ~addr:(addr_of_side a_node) ~prefix_len:24;
  Ip.Stack.configure_iface (stack_of t b_node) b_iface
    ~addr:(addr_of_side b_node) ~prefix_len:24;
  t.links <-
    {
      li_id = id;
      li_subnet = subnet;
      li_a = a_node;
      li_b = b_node;
      li_addr_a = addr_of_side a_node;
      li_addr_b = addr_of_side b_node;
    }
    :: t.links;
  (* Default routes for hosts hanging off gateways. *)
  (match kind_of t a_node with
  | Some (Host h) -> host_default_route t h a_iface
  | Some (Gateway _) | None -> ());
  (match kind_of t b_node with
  | Some (Host h) -> host_default_route t h b_iface
  | Some (Gateway _) | None -> ());
  id

let link_info t id =
  match List.find_opt (fun l -> l.li_id = id) t.links with
  | Some l -> l
  | None -> invalid_arg "Internet: unknown link"

let link_subnet t id = (link_info t id).li_subnet

let addr_on_link t id node =
  let l = link_info t id in
  if l.li_a = node then l.li_addr_a
  else if l.li_b = node then l.li_addr_b
  else invalid_arg "Internet.addr_on_link: node not on link"

let addr_of t node = Ip.Stack.primary_addr (stack_of t node)

(* --- static (god-view) routing ----------------------------------------- *)

(* BFS hop-count shortest paths from every node; install a route for every
   link subnet. *)
let recompute_static t =
  let n = Netsim.node_count t.nsim in
  List.iter
    (fun (node, kind) ->
      ignore kind;
      let table = Ip.Stack.table (stack_of t node) in
      let is_host = match kind with Host _ -> true | Gateway _ -> false in
      (* Keep connected routes — and, on hosts, the default route toward
         their gateway, which covers destinations the builder does not
         know about; drop everything previously computed. *)
      List.iter
        (fun (r : Ip.Route_table.route) ->
          let keep_default =
            is_host && Prefix.equal r.prefix Prefix.default
          in
          if (r.next_hop <> None || r.metric > 0) && not keep_default then
            Ip.Route_table.remove table r.prefix)
        (Ip.Route_table.entries table);
      (* BFS from [node]. *)
      let dist = Array.make n max_int in
      let first_iface = Array.make n (-1) in
      let first_hop_addr = Array.make n Addr.any in
      dist.(node) <- 0;
      let q = Queue.create () in
      Queue.push node q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        for i = 0 to Netsim.iface_count t.nsim u - 1 do
          let link = Netsim.iface_link t.nsim u i in
          let v, viface = Netsim.peer t.nsim u i in
          (* Hosts do not forward: only expand through gateways (or the
             origin itself). *)
          let expandable =
            u = node
            ||
            match kind_of t u with
            | Some (Gateway _) -> true
            | Some (Host _) | None -> false
          in
          if
            expandable
            && Netsim.link_is_up t.nsim link
            && Netsim.node_is_up t.nsim v
            && dist.(v) = max_int
          then begin
            dist.(v) <- dist.(u) + 1;
            if u = node then begin
              first_iface.(v) <- i;
              (* [v] may be a node managed outside the builder (e.g. a
                 hand-rolled minimal host); skip address resolution then. *)
              match kind_of t v with
              | None -> ()
              | Some _ -> (
                  match Ip.Stack.iface_addr (stack_of t v) viface with
                  | Some a -> first_hop_addr.(v) <- a
                  | None -> ())
            end
            else begin
              first_iface.(v) <- first_iface.(u);
              first_hop_addr.(v) <- first_hop_addr.(u)
            end;
            Queue.push v q
          end
        done
      done;
      (* For each link subnet, route toward the nearer endpoint. *)
      List.iter
        (fun l ->
          let candidates =
            List.filter (fun e -> dist.(e) < max_int) [ l.li_a; l.li_b ]
          in
          match
            List.sort (fun x y -> Int.compare dist.(x) dist.(y)) candidates
          with
          | [] -> ()
          | e :: _ ->
              if e <> node && dist.(e) > 0 then
                Ip.Route_table.add table
                  {
                    Ip.Route_table.prefix = l.li_subnet;
                    iface = first_iface.(e);
                    next_hop = Some first_hop_addr.(e);
                    metric = dist.(e);
                  })
        t.links)
    t.kinds

(* --- routing protocol wiring -------------------------------------------- *)

let gateway_neighbors t (g : gateway) =
  let acc = ref [] in
  for i = 0 to Netsim.iface_count t.nsim g.g_node - 1 do
    let peer_node, peer_iface = Netsim.peer t.nsim g.g_node i in
    match kind_of t peer_node with
    | Some (Gateway pg) -> (
        match Ip.Stack.iface_addr pg.g_ip peer_iface with
        | Some a -> acc := (i, a) :: !acc
        | None -> ())
    | Some (Host _) | None -> ()
  done;
  !acc

let start t =
  if not t.started then begin
    t.started <- true;
    match t.routing with
    | Static -> recompute_static t
    | Distance_vector ->
        List.iter
          (fun (_, kind) ->
            match kind with
            | Host _ -> ()
            | Gateway g ->
                let dv = Routing.Dv.create ~config:t.dv_config g.g_udp in
                List.iter
                  (fun (iface, addr) -> Routing.Dv.add_neighbor dv iface addr)
                  (gateway_neighbors t g);
                Routing.Dv.start dv;
                g.g_dv <- Some dv)
          t.kinds
    | Link_state ->
        List.iter
          (fun (_, kind) ->
            match kind with
            | Host _ -> ()
            | Gateway g ->
                let ls = Routing.Ls.create ~config:t.ls_config g.g_udp in
                List.iter
                  (fun (iface, addr) ->
                    Routing.Ls.add_neighbor ls iface addr ~cost:1)
                  (gateway_neighbors t g);
                Routing.Ls.start ls;
                g.g_ls <- Some ls)
          t.kinds
  end

let run_for t seconds =
  Engine.run ~until:(Engine.now t.eng + Engine.sec seconds) t.eng

let run_until_idle ?max_events t = Engine.run ?max_events t.eng

let fail_link t id = Netsim.set_link_up t.nsim id false
let heal_link t id = Netsim.set_link_up t.nsim id true

(* Crash = power off + amnesia.  A gateway's routing knowledge, route
   cache and reassembly buffers are soft state and die with it — only
   configuration (interfaces, neighbor declarations) survives to reboot.
   That asymmetry is fate-sharing (Clark goal 1): nothing an end-to-end
   conversation depends on lives in the gateway, so the hosts' TCP
   state rides out the crash.  Hosts keep their state: they *are* the
   fate-sharing endpoint. *)
let crash_node t node =
  Netsim.set_node_up t.nsim node false;
  match kind_of t node with
  | Some (Gateway g) ->
      Ip.Stack.flush_soft_state g.g_ip;
      Option.iter Routing.Dv.reset g.g_dv;
      Option.iter Routing.Ls.reset g.g_ls
  | Some (Host _) | None -> ()

(* Reboot.  Under [Static] routing the god-view tables are configuration
   (re-read from disk, as it were), so recompute them; under a dynamic
   protocol the reborn gateway must re-learn the catenet the honest
   way. *)
let restore_node t node =
  Netsim.set_node_up t.nsim node true;
  if t.started && t.routing = Static then recompute_static t

(* Glue for the fault-schedule engine: a [Chaos.env] whose crash hook
   carries the soft-state semantics above. *)
let chaos_env t =
  {
    Chaos.env_net = t.nsim;
    env_crash = (fun n -> crash_node t n);
    env_restore = (fun n -> restore_node t n);
  }

type hop_report = {
  hop_ttl : int;
  hop_addr : Addr.t option;
  hop_rtt : float option;
  hop_reached : bool;
}

let traceroute t ~from dst ?(max_ttl = 16) () =
  let reports : hop_report list ref = ref [] in
  let sent_at = Hashtbl.create 16 in
  let done_ = ref false in
  let record ttl addr reached =
    if (not !done_) && not (List.exists (fun r -> r.hop_ttl = ttl) !reports)
    then begin
      let rtt =
        Option.map
          (fun at -> Engine.to_sec (Engine.now t.eng - at))
          (Hashtbl.find_opt sent_at ttl)
      in
      reports :=
        List.sort
          (fun a b -> Int.compare a.hop_ttl b.hop_ttl)
          ({ hop_ttl = ttl; hop_addr = addr; hop_rtt = rtt;
             hop_reached = reached }
          :: !reports);
      if reached then done_ := true
    end
  in
  (* Time-exceeded quotes our probe: the echo header's id/seq fields sit
     at bytes 24..27 of the quoted original (IP header + first 8 payload
     bytes), and we put the TTL in seq. *)
  Ip.Stack.add_error_handler from.h_ip (fun ~from:reporter msg ->
      match msg with
      | Packet.Icmp_wire.Time_exceeded { original } ->
          if Bytes.length original >= 28 then begin
            let id = Bytes.get_uint16_be original 24 in
            let seq = Bytes.get_uint16_be original 26 in
            if id = 0xF0F0 then record seq (Some reporter) false
          end
      | Packet.Icmp_wire.Dest_unreachable _ | Packet.Icmp_wire.Echo_request _
      | Packet.Icmp_wire.Echo_reply _ ->
          ());
  Ip.Stack.set_echo_reply_handler from.h_ip (fun ~id ~seq ~payload:_ ->
      if id = 0xF0F0 then record seq (Some dst) true);
  let rec probe ttl =
    if ttl <= max_ttl && not !done_ then begin
      Hashtbl.replace sent_at ttl (Engine.now t.eng);
      (* Hand-build the echo request so we control TTL and IP id. *)
      let msg =
        Packet.Icmp_wire.Echo_request
          { id = 0xF0F0; seq = ttl; payload = Bytes.make 8 't' }
      in
      ignore
        (Ip.Stack.send from.h_ip ~ttl ~proto:Packet.Ipv4.Proto.Icmp ~dst
           (Packet.Icmp_wire.encode msg));
      Engine.after t.eng 300_000 (fun () -> probe (ttl + 1))
    end
  in
  Engine.after t.eng 1 (fun () -> probe 1);
  reports

(* --- observability ------------------------------------------------------ *)

let stack_of_kind = function Host h -> h.h_ip | Gateway g -> g.g_ip

(* Accounting may be switched on after the registry is built, so the
   source checks the stack live at every snapshot instead of at
   registration time. *)
let accounting_source ip () =
  match Ip.Stack.accounting ip with
  | Some acc -> Ip.Accounting.metrics_items acc ()
  | None -> []

let metrics t =
  let m = Trace.Metrics.create () in
  List.iter
    (fun (node, kind) ->
      let name = Netsim.node_name t.nsim node in
      let ip = stack_of_kind kind in
      Trace.Metrics.register m ("ip." ^ name) (Ip.Stack.metrics_items ip);
      Trace.Metrics.register m ("accounting." ^ name) (accounting_source ip);
      match kind with
      | Host h ->
          Trace.Metrics.register m ("tcp." ^ name)
            (Tcp.metrics_items h.h_tcp);
          Trace.Metrics.register m ("udp." ^ name)
            (Udp.metrics_items h.h_udp)
      | Gateway g ->
          Trace.Metrics.register m ("udp." ^ name)
            (Udp.metrics_items g.g_udp))
    t.kinds;
  List.iter
    (fun l ->
      Trace.Metrics.register m
        (Printf.sprintf "link.%d" l.li_id)
        (Netsim.link_metrics_items t.nsim l.li_id))
    t.links;
  Trace.Metrics.register m "links.total" (Netsim.total_metrics_items t.nsim);
  m

let metrics_json t =
  let m = metrics t in
  let ledgers =
    List.filter_map
      (fun (node, kind) ->
        match Ip.Stack.accounting (stack_of_kind kind) with
        | Some acc ->
            (* Bounded: a million-flow ledger must not yield a
               million-line metrics snapshot. *)
            Some
              ( Netsim.node_name t.nsim node,
                Ip.Accounting.to_json ~limit:100 acc )
        | None -> None)
      t.kinds
  in
  (* Serialized output is keyed in sorted order, not topology build
     order — the determinism contract for every JSON emitter. *)
  let ledgers =
    List.sort (fun (a, _) (b, _) -> String.compare a b) ledgers
  in
  match (Trace.Metrics.to_json m, ledgers) with
  | json, [] -> json
  | Trace.Json.Obj fields, l ->
      Trace.Json.Obj (fields @ [ ("accounting_flows", Trace.Json.Obj l) ])
  | json, _ -> json

let tap_into t pcap lid =
  Netsim.set_link_tap t.nsim lid
    (Some
       (fun ~dir:_ frame ->
         Trace.Pcap.add pcap ~ts_us:(Engine.now t.eng) frame))

let pcap_link t lid =
  let p = Trace.Pcap.create () in
  tap_into t p lid;
  p

let pcap_all_links t =
  let p = Trace.Pcap.create () in
  List.iter (fun l -> tap_into t p l.li_id) t.links;
  p

let ping t ~from dst ~count ~interval_us =
  let samples = Stdext.Stats.Samples.create () in
  let sent_at = Hashtbl.create 16 in
  Ip.Stack.set_echo_reply_handler from.h_ip (fun ~id:_ ~seq ~payload:_ ->
      match Hashtbl.find_opt sent_at seq with
      | Some at ->
          Stdext.Stats.Samples.add samples
            (Engine.to_sec (Engine.now t.eng - at));
          Hashtbl.remove sent_at seq
      | None -> ());
  let rec fire seq =
    if seq < count then begin
      Hashtbl.replace sent_at seq (Engine.now t.eng);
      Ip.Stack.send_echo_request from.h_ip ~dst ~id:1 ~seq
        ~payload:(Bytes.make 32 'p');
      Engine.after t.eng interval_us (fun () -> fire (seq + 1))
    end
  in
  Engine.after t.eng 1 (fun () -> fire 0);
  samples
