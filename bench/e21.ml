(* E21 — the name/service layer at scale: production-shaped traffic.

   The 1988 architecture identifies hosts by address alone; E21 measures
   the layer that had to be bolted on to make that usable.  Over the E17
   region topology (10^4 pooled hosts, aggregated core) we stand up the
   whole name system: a root authority + anycast service directory on a
   full-stack host, a region authority and a caching resolver on every
   region gateway, and health probing over the replicas.

   The workload is open-loop and production-shaped: >= 10^5 client
   endpoints (pooled host x ephemeral port), each doing one
   resolve-then-request/response session against an anycast service (90%)
   or a popular host name (10%), paced uniformly over a fixed window.
   Mid-run, one replica crashes silently (probing must notice and fail
   over), it later recovers, and a block of region gateways takes an E16
   crash-amnesia hit — routes restored as reconvergence would, resolver
   caches NOT, because they are the soft state under test.

   Reported and gated (bin/check.sh over the committed BENCH_names.json):
   steady-state cache hit ratio >= 95%, p99 resolve latency within
   budget, failover within the E16 reconvergence budget, and zero lost
   sessions outside the declared crash windows. *)

open Catenet
module W = Names.Wire
module Addr = Packet.Addr

let sessions_full = 120_000
let cfg_regions = 100
let cfg_hosts = 100
let services = 4
let replicas_per_service = 8
let svc_port = 9_000
let client_port_base = 20_000
let popular_hosts = 16
let host_ttl_s = 10
let deleg_ttl_s = 30

(* Virtual-time script (microseconds). *)
let launch_window_us = 6_000_000
let crash_at_us = 3_000_000
let recover_at_us = 5_000_000
let flush_at_us = 4_500_000
let run_until_us = 9_000_000
let probe_interval_us = 500_000
let flushed_regions = [ 50; 51; 52; 53 ]

(* Gate thresholds, embedded in the artifact so check.sh reads one file. *)
let hit_floor_pct = 95.0
let p99_budget_ms = 20.0
let failover_budget_s = 12.0

type sess = {
  mutable s_query_us : int;
  mutable s_resolve_us : int;  (* -1 until the resolver answered *)
  mutable s_done_us : int;  (* -1 until the session completed *)
  mutable s_rcode : int;
  s_kind : int;  (* 0 = anycast service, 1 = host name *)
  s_target : int;  (* service id / popular-name id *)
  s_region : int;  (* the client's region (its resolver) *)
}

let percentile sorted p =
  if Array.length sorted = 0 then 0.0
  else
    sorted.(min (Array.length sorted - 1)
              (int_of_float (p *. float_of_int (Array.length sorted))))
    |> float_of_int

let run () =
  Util.banner "E21" "name/service layer at scale"
    "resolver caches absorb >=95% of an open-loop 10^5-client lookup \
     storm; anycast failover beats the E16 reconvergence budget";
  let sessions = Util.scaled sessions_full in
  let topo =
    Topo.build
      { Topo.default_config with
        Topo.seed = 21; core = 8; chords = 4; regions = cfg_regions;
        hosts_per_region = cfg_hosts }
  in
  let eng = Topo.engine topo in
  let pool = Topo.pool topo in
  let nregions = Topo.regions topo in

  (* -- control plane: root + directory, per-region authorities and
     resolvers ------------------------------------------------------- *)
  let root_stack, root_addr = Topo.add_full_host topo ~region:0 in
  let root_udp = Udp.create root_stack in
  let dir =
    Names.Service.create ~udp:root_udp ~eng ~src:root_addr
      ~service_port:svc_port ()
  in
  Names.Service.set_distance dir (Topo.region_hops topo);
  let _root_server =
    Names.Server.create ~udp:root_udp ~src:root_addr
      ~authority:
        (Names.Server.root_authority ~regions:nregions
           ~region_server_bits:(fun r -> W.addr_bits (Topo.region_gw_addr r))
           ~deleg_ttl_s
           ~svc:(fun ~src q -> Names.Service.answer_for dir ~src q))
      ()
  in
  let gw_udp =
    Array.init nregions (fun r -> Udp.create (Topo.region_gw topo r))
  in
  let resolvers =
    Array.init nregions (fun r ->
        let gw = Topo.region_gw topo r in
        let udp = gw_udp.(r) in
        ignore
          (Names.Server.create ~udp ~src:(Topo.region_gw_addr r)
             ~authority:
               (Names.Server.region_authority ~region:r ~hosts:cfg_hosts
                  ~host_addr_bits:(fun i ->
                    W.addr_bits (Topo.host_addr topo ~region:r ~index:i))
                  ~ttl_s:host_ttl_s)
             ()
            : Names.Server.t);
        Names.Resolver.create ~udp ~eng ~node:(Ip.Stack.node_id gw)
          ~src:(Topo.region_gw_addr r) ~root:root_addr ())
  in

  (* -- anycast replicas: pooled hosts spread across regions ---------- *)
  let replica_slot = Array.make (services * replicas_per_service) 0 in
  for s = 0 to services - 1 do
    Names.Service.register dir ~service:s
      (List.init replicas_per_service (fun j ->
           let region = ((j * 12) + (s * 3)) mod nregions in
           replica_slot.((s * replicas_per_service) + j) <-
             Topo.host_slot topo ~region ~index:s;
           (region, Topo.host_addr topo ~region ~index:s)))
  done;
  Names.Service.start_probing dir ~interval_us:probe_interval_us;

  (* -- client population: every pooled host that is not a replica ---- *)
  let is_replica = Array.make (Hostpool.size pool) false in
  Array.iter (fun s -> is_replica.(s) <- true) replica_slot;
  let clients =
    let l = ref [] in
    for r = nregions - 1 downto 0 do
      for i = cfg_hosts - 1 downto 0 do
        let slot = Topo.host_slot topo ~region:r ~index:i in
        if not is_replica.(slot) then l := (slot, r) :: !l
      done
    done;
    Array.of_list !l
  in
  let nclients = Array.length clients in
  let client_ix = Array.make (Hostpool.size pool) (-1) in
  Array.iteri (fun ix (slot, _) -> client_ix.(slot) <- ix) clients;

  (* Session i runs on client (i mod nclients) from source port
     [client_port_base + i / nclients] — the (host, port) pair is the
     client endpoint, so 10^4 pooled hosts present >= 10^5 distinct
     clients to the resolvers, exactly the churn E21 is after. *)
  let sess =
    Array.init sessions (fun i ->
        let _, region = clients.(i mod nclients) in
        let kind = if i mod 10 = 9 then 1 else 0 in
        let target =
          if kind = 0 then i mod services else i mod popular_hosts
        in
        { s_query_us = -1; s_resolve_us = -1; s_done_us = -1; s_rcode = -1;
          s_kind = kind; s_target = target; s_region = region })
  in
  let popular_region p = ((p * 7) + 3) mod nregions in
  let request_payload = Bytes.make 32 'r' in

  (* -- data plane: one shared closure gives every pooled host its
     behavior (replica echo, client resolve -> request -> response) --- *)
  let dead = Array.make (Hostpool.size pool) false in
  Hostpool.set_udp_sink pool
    (Some
       (fun slot ~src ~src_port ~dst_port payload ->
         if dst_port = svc_port then begin
           (* replica: echo requests and probes, unless crashed *)
           if is_replica.(slot) && not dead.(slot) then
             ignore
               (Hostpool.send_udp pool slot ~dst:src ~src_port:svc_port
                  ~dst_port:src_port payload
                 : bool)
         end
         else if client_ix.(slot) >= 0 && dst_port >= client_port_base then begin
           let i =
             ((dst_port - client_port_base) * nclients) + client_ix.(slot)
           in
           if i < sessions then
             let s = sess.(i) in
             if src_port = Names.Resolver.well_known_port then begin
               (* resolver answered: fire the request (service sessions)
                  or finish (host sessions) *)
               match W.decode payload with
               | Error _ -> ()
               | Ok m ->
                   if s.s_resolve_us < 0 then begin
                     s.s_resolve_us <- Engine.now eng;
                     s.s_rcode <- m.W.rcode;
                     if m.W.rcode = W.rcode_ok then
                       if s.s_kind = 1 then s.s_done_us <- s.s_resolve_us
                       else
                         ignore
                           (Hostpool.send_udp pool slot
                              ~dst:(W.answer_addr m) ~src_port:dst_port
                              ~dst_port:svc_port request_payload
                             : bool)
                   end
             end
             else if src_port = svc_port then begin
               (* the replica's response: session complete *)
               if s.s_resolve_us >= 0 && s.s_done_us < 0 then
                 s.s_done_us <- Engine.now eng
             end
         end))
    ;

  (* -- workload script ----------------------------------------------- *)
  let total_lookups () =
    Array.fold_left
      (fun a r -> a + (Names.Resolver.stats r).Names.Resolver.lookups)
      0 resolvers
  in
  let total_hits () =
    Array.fold_left
      (fun a r -> a + (Names.Resolver.stats r).Names.Resolver.cache_hits)
      0 resolvers
  in
  let warm_i = sessions / 10 in
  let warm_lookups = ref 0 and warm_hits = ref 0 in
  let pace_us = max 1 (launch_window_us / sessions) in
  let launch i =
    if i = warm_i then begin
      warm_lookups := total_lookups ();
      warm_hits := total_hits ()
    end;
    let slot, region = clients.(i mod nclients) in
    let port = client_port_base + (i / nclients) in
    let s = sess.(i) in
    let q =
      if s.s_kind = 0 then
        W.query ~id:(i land 0xffff) ~rd:true ~qtype:W.qtype_svc
          ~l0:s.s_target ~l1:0 ~l2:0
      else
        W.query ~id:(i land 0xffff) ~rd:true ~qtype:W.qtype_host
          ~l0:(popular_region s.s_target) ~l1:s.s_target ~l2:0
    in
    s.s_query_us <- Engine.now eng;
    ignore
      (Hostpool.send_udp pool slot ~dst:(Topo.region_gw_addr region)
         ~src_port:port ~dst_port:Names.Resolver.well_known_port
         (W.encode q)
        : bool)
  in
  let rec launch_from i =
    if i < sessions then begin
      launch i;
      Engine.after eng pace_us (fun () -> launch_from (i + 1))
    end
  in
  Engine.after eng 1 (fun () -> launch_from 0);

  (* The crash script.  The replica dies silently; detection and
     recovery timestamps come from watching the directory's counters. *)
  let victim = replica_slot.(0) (* service 0, replica 0 *) in
  let t_crash = ref (-1) and t_detect = ref (-1) in
  let t_recover = ref (-1) and t_redetect = ref (-1) in
  Engine.after eng crash_at_us (fun () ->
      dead.(victim) <- true;
      t_crash := Engine.now eng);
  Engine.after eng recover_at_us (fun () ->
      dead.(victim) <- false;
      t_recover := Engine.now eng);
  let rec watch () =
    let st = Names.Service.stats dir in
    if !t_detect < 0 && st.Names.Service.failovers_down > 0 then
      t_detect := Engine.now eng;
    if !t_redetect < 0 && st.Names.Service.failovers_up > 0 then
      t_redetect := Engine.now eng;
    if Engine.now eng < run_until_us then Engine.after eng 50_000 watch
  in
  Engine.after eng 50_000 watch;

  (* E16-style crash amnesia at a block of region gateways: the reboot
     keeps configuration and lets routing reconverge (we restore the
     learned routes in place, zero downtime), but the resolver cache and
     every in-flight walk are gone — that loss is the experiment. *)
  Engine.after eng flush_at_us (fun () ->
      List.iter
        (fun r ->
          let gw = Topo.region_gw topo r in
          let learned =
            List.filter
              (fun (rt : Ip.Route_table.route) ->
                rt.Ip.Route_table.metric > 0
                || rt.Ip.Route_table.next_hop <> None)
              (Ip.Route_table.entries (Ip.Stack.table gw))
          in
          Ip.Stack.flush_soft_state gw;
          List.iter (Ip.Route_table.add (Ip.Stack.table gw)) learned)
        flushed_regions);

  (* -- run ------------------------------------------------------------ *)
  let wall0 = Unix.gettimeofday () in
  Engine.run ~until:run_until_us eng;
  let wall = Unix.gettimeofday () -. wall0 in

  (* -- harvest -------------------------------------------------------- *)
  let lookups = total_lookups () and hits = total_hits () in
  let steady_lookups = lookups - !warm_lookups in
  let steady_hits = hits - !warm_hits in
  let steady_hit_pct =
    if steady_lookups = 0 then 0.0
    else 100.0 *. float_of_int steady_hits /. float_of_int steady_lookups
  in
  let resolve_lat =
    let l = ref [] in
    Array.iter
      (fun s ->
        if s.s_resolve_us >= 0 then
          l := (s.s_resolve_us - s.s_query_us) :: !l)
      sess;
    let a = Array.of_list !l in
    Array.sort compare a;
    a
  in
  let p99_resolve_ms = percentile resolve_lat 0.99 /. 1_000.0 in
  let p50_resolve_ms = percentile resolve_lat 0.50 /. 1_000.0 in
  let failover_s =
    if !t_detect < 0 || !t_crash < 0 then -1.0
    else float_of_int (!t_detect - !t_crash) /. 1e6
  in
  let recovery_s =
    if !t_redetect < 0 || !t_recover < 0 then -1.0
    else float_of_int (!t_redetect - !t_recover) /. 1e6
  in
  (* Loss accounting: a session is lost if it never completed.  Losses
     are excusable inside the two declared windows — service-0 sessions
     while the crashed replica could still be handed out (directory
     detection lag + resolver cache TTL), and sessions from the flushed
     regions whose walk the amnesia aborted. *)
  let sec = 1_000_000 in
  let crash_lo = crash_at_us - sec
  and crash_hi = (if !t_detect >= 0 then !t_detect else crash_at_us) + 2 * sec
  in
  let flush_lo = flush_at_us - sec and flush_hi = flush_at_us + sec in
  let completed = ref 0 and lost_in_windows = ref 0 in
  let lost_outside = ref 0 and servfails = ref 0 in
  let crash_launched = ref 0 and crash_completed = ref 0 in
  Array.iter
    (fun s ->
      let in_crash_window =
        s.s_kind = 0 && s.s_target = 0 && s.s_query_us >= crash_lo
        && s.s_query_us <= crash_hi
      in
      if in_crash_window then begin
        incr crash_launched;
        if s.s_done_us >= 0 then incr crash_completed
      end;
      if s.s_done_us >= 0 then incr completed
      else if s.s_rcode = W.rcode_servfail then incr servfails
      else if
        in_crash_window
        || (List.mem s.s_region flushed_regions
           && s.s_query_us >= flush_lo && s.s_query_us <= flush_hi)
      then incr lost_in_windows
      else incr lost_outside)
    sess;
  let goodput_in_crash_pct =
    if !crash_launched = 0 then 100.0
    else 100.0 *. float_of_int !crash_completed /. float_of_int !crash_launched
  in
  let resolver_flushes =
    Array.fold_left
      (fun a r -> a + (Names.Resolver.stats r).Names.Resolver.flushes)
      0 resolvers
  in
  let cache_agg f =
    Array.fold_left
      (fun a r -> a + f (Names.Cache.stats (Names.Resolver.cache r)))
      0 resolvers
  in
  let eph_allocs = ref 0 and eph_reuses = ref 0 and eph_exhausted = ref 0 in
  Array.iter
    (fun udp ->
      let u = Udp.stats udp in
      eph_allocs := !eph_allocs + u.Udp.eph_allocs;
      eph_reuses := !eph_reuses + u.Udp.eph_reuses;
      eph_exhausted := !eph_exhausted + u.Udp.eph_exhausted)
    gw_udp;

  Util.table
    [ "metric"; "value" ]
    [
      [ "client endpoints"; string_of_int sessions ];
      [ "hosts"; string_of_int (nregions * cfg_hosts) ];
      [ "lookups"; string_of_int lookups ];
      [ "lookups/s (wall)"; Printf.sprintf "%.0f" (float_of_int lookups /. wall) ];
      [ "steady-state cache hit"; Printf.sprintf "%.2f%%" steady_hit_pct ];
      [ "resolve p50 / p99"; Printf.sprintf "%.2f / %.2f ms" p50_resolve_ms p99_resolve_ms ];
      [ "failover detect"; Printf.sprintf "%.2f s" failover_s ];
      [ "recovery detect"; Printf.sprintf "%.2f s" recovery_s ];
      [ "goodput in crash window"; Printf.sprintf "%.1f%%" goodput_in_crash_pct ];
      [ "completed"; string_of_int !completed ];
      [ "lost (in windows)"; string_of_int !lost_in_windows ];
      [ "lost (outside)"; string_of_int !lost_outside ];
      [ "servfail sessions"; string_of_int !servfails ];
      [ "resolver amnesia flushes"; string_of_int resolver_flushes ];
      [ "ephemeral ports alloc/reuse"; Printf.sprintf "%d / %d" !eph_allocs !eph_reuses ];
    ];
  Util.note
    "one replica crash detected in %.2fs (budget %.1fs); amnesia cost %d \
     in-window sessions, nothing outside the windows"
    failover_s failover_budget_s !lost_in_windows;

  let open Trace.Json in
  Util.write_json "BENCH_names.json"
    (Obj
       [ ("experiment", Str "E21");
         ("clients", Int sessions);
         ("hosts", Int (nregions * cfg_hosts));
         ("regions", Int nregions);
         ("services", Int services);
         ("replicas_per_service", Int replicas_per_service);
         ("lookups", Int lookups);
         ("lookups_per_sec", Float (float_of_int lookups /. wall));
         ("steady_hit_pct", Float steady_hit_pct);
         ("hit_floor_pct", Float hit_floor_pct);
         ("p50_resolve_ms", Float p50_resolve_ms);
         ("p99_resolve_ms", Float p99_resolve_ms);
         ("p99_budget_ms", Float p99_budget_ms);
         ("failover_s", Float failover_s);
         ("recovery_s", Float recovery_s);
         ("failover_budget_s", Float failover_budget_s);
         ("goodput_in_crash_pct", Float goodput_in_crash_pct);
         ("completed", Int !completed);
         ("servfail_sessions", Int !servfails);
         ("lost_in_windows", Int !lost_in_windows);
         ("lost_outside_crash", Int !lost_outside);
         ("resolver_flushes", Int resolver_flushes);
         ("cache",
          Obj
            [ ("hits", Int (cache_agg (fun s -> s.Names.Cache.hits)));
              ("misses", Int (cache_agg (fun s -> s.Names.Cache.misses)));
              ("expired", Int (cache_agg (fun s -> s.Names.Cache.expired)));
              ("evictions", Int (cache_agg (fun s -> s.Names.Cache.evictions)));
              ("flushes", Int (cache_agg (fun s -> s.Names.Cache.flushes))) ]);
         ("ephemeral_ports",
          Obj
            [ ("allocs", Int !eph_allocs);
              ("reuses", Int !eph_reuses);
              ("exhausted", Int !eph_exhausted) ]) ])
