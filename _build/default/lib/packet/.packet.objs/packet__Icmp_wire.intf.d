lib/packet/icmp_wire.mli: Format
