type event = { mutable cancelled : bool; fn : unit -> unit }

type t = {
  mutable clock : int;
  mutable seq : int;
  queue : event Stdext.Heap.t;
}

let create () = { clock = 0; seq = 0; queue = Stdext.Heap.create () }

let now t = t.clock

let us d = d
let ms d = d * 1_000
let sec s = int_of_float ((s *. 1e6) +. 0.5)
let to_sec us = float_of_int us /. 1e6

let schedule_event t ~at fn =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%d is before now=%d" at t.clock);
  let ev = { cancelled = false; fn } in
  Stdext.Heap.push t.queue ~key:at ~seq:t.seq ev;
  t.seq <- t.seq + 1;
  ev

let schedule t ~at fn = ignore (schedule_event t ~at fn)

let after t d fn = schedule t ~at:(t.clock + d) fn

module Timer = struct
  type handle = { ev : event; mutable fired : bool }

  let start t ~after fn =
    let h = ref None in
    let ev =
      schedule_event t ~at:(t.clock + after) (fun () ->
          (match !h with Some handle -> handle.fired <- true | None -> ());
          fn ())
    in
    let handle = { ev; fired = false } in
    h := Some handle;
    handle

  let cancel h = h.ev.cancelled <- true

  let active h = (not h.fired) && not h.ev.cancelled
end

let pending t = Stdext.Heap.length t.queue

(* Purge-on-pop: cancelled events — overwhelmingly protocol timers that
   were disarmed before firing (retransmission, delayed ACK) — are
   discarded here without counting as executed events, so a queue full of
   dead timer shells costs pops, not steps.  The clock still advances over
   the shells, exactly as it always has: a run that drains the queue must
   end at the same instant it did before purging existed, or every
   `run ~until:(now + w)` window downstream shifts and reproducibility
   across versions is lost.  [min_key]/[pop_min] keep the loop
   allocation-free. *)
let rec step t =
  if Stdext.Heap.is_empty t.queue then false
  else begin
    let at = Stdext.Heap.min_key t.queue in
    let ev = Stdext.Heap.pop_min t.queue in
    t.clock <- at;
    if ev.cancelled then step t
    else begin
      ev.fn ();
      true
    end
  end

let run ?until ?max_events t =
  let executed = ref 0 in
  let continue = ref true in
  while !continue do
    (match max_events with
    | Some m when !executed >= m -> continue := false
    | Some _ | None -> ());
    if !continue then begin
      if Stdext.Heap.is_empty t.queue then continue := false
      else begin
        let at = Stdext.Heap.min_key t.queue in
        match until with
        | Some u when at > u ->
            t.clock <- u;
            continue := false
        | Some _ | None ->
            (* Inline purge-on-pop: the [until] boundary must be re-checked
               per event, so [step]'s own purge loop (which would run the
               next live event regardless) cannot be used here. *)
            let ev = Stdext.Heap.pop_min t.queue in
            t.clock <- at;
            if not ev.cancelled then begin
              ev.fn ();
              incr executed
            end
      end
    end
  done
