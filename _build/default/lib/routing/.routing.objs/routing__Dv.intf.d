lib/routing/dv.mli: Netsim Packet Udp
