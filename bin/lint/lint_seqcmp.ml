(* Wrap-safe arithmetic rule of catenet-lint (typed, .cmt).

   TCP sequence numbers live in a 32-bit circular space: [a < b] is
   meaningless near the wrap, which is exactly where a long transfer
   ends up.  All comparisons and distances must go through the
   wrap-aware [Seq_num] operations ([lt]/[le]/[gt]/[ge]/[diff]/
   [in_window]); this pass makes a raw [<]/[<=]/[>]/[>=]/[-] whose
   operand is a TCP sequence value a hard error everywhere outside
   [lib/tcp/seq_num.ml] itself.  Equality is exempt: [=] on sequence
   numbers is wrap-safe.

   An operand counts as a sequence value when it is

     - a record field access whose label is one of the TCB sequence
       fields ([snd_una], [rcv_nxt], ...),
     - a [seq]/[ack_n] access on a [Tcp_wire] header record, or
     - typed [Seq_num.t] directly.

   The check is shallow (direct operands only): a function result such
   as [off_of_seq c c.snd_una] is an int distance already converted via
   [Seq_num.diff], and must not taint the arithmetic around it.

   The same confusion exists for time: [Engine.now] is an absolute
   microsecond timestamp, durations are plain ints, and comparing one
   against a bare integer literal mixes the two (an absolute-time
   threshold that silently depends on when the clock started).  Bind
   the timestamps and compare elapsed durations instead:
   [now - t.last_seen > timeout_us].

   [@seqcmp.exempt] on an expression waives the rule for that node. *)

open Typedtree
open Lint_common

let compare_ops = [ "Stdlib.<"; "Stdlib.<="; "Stdlib.>"; "Stdlib.>=" ]
let minus_op = "Stdlib.-"

let seq_labels =
  [ "snd_una"; "snd_nxt"; "snd_max"; "snd_wl1"; "snd_wl2"; "rcv_nxt";
    "irs"; "iss"; "recover"; "last_ooo_seq" ]

let wire_seq_labels = [ "seq"; "ack_n"; "ack" ]

let head_type_parts ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Some (split_path_name (Path.name p))
  | _ -> None

let is_seq_num_type ty =
  match head_type_parts ty with
  | Some parts -> (
      match List.rev parts with
      | "t" :: "Seq_num" :: _ -> true
      | _ -> false)
  | None -> false

let is_tcp_wire_record ty =
  match head_type_parts ty with
  | Some parts -> List.mem "Tcp_wire" parts
  | None -> false

let tainted e =
  match e.exp_desc with
  | Texp_field (_, _, lbl) ->
      List.mem lbl.Types.lbl_name seq_labels
      || (List.mem lbl.Types.lbl_name wire_seq_labels
         && is_tcp_wire_record lbl.Types.lbl_res)
  | _ -> is_seq_num_type e.exp_type

let is_engine_now e =
  match e.exp_desc with
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) -> (
      match List.rev (split_path_name (Path.name p)) with
      | "now" :: "Engine" :: _ -> true
      | _ -> false)
  | _ -> false

let is_int_literal e =
  match e.exp_desc with
  | Texp_constant (Asttypes.Const_int _) -> true
  | _ -> false

let check_cmt path =
  match Cmt_format.read_cmt path with
  | exception _ -> () (* the cmt rule in Lint_typed already reported it *)
  | infos -> (
      match infos.Cmt_format.cmt_annots with
      | Cmt_format.Implementation str ->
          let src =
            Option.value ~default:path infos.Cmt_format.cmt_sourcefile
          in
          if Filename.basename src = "seq_num.ml" then ()
          else begin
            let report_at (loc : Location.t) msg =
              report ~file:src ~line:loc.loc_start.pos_lnum ~rule:"seqcmp" msg
            in
            let iter =
              { Tast_iterator.default_iterator with
                expr =
                  (fun sub e ->
                    (if has_attr "seqcmp.exempt" e.exp_attributes then ()
                     else
                       match e.exp_desc with
                       | Texp_apply
                           ({ exp_desc = Texp_ident (p, _, _); _ },
                            (_, Some a) :: (_, Some b) :: _) ->
                           let op = Path.name p in
                           let op_name =
                             last_exn (split_path_name op)
                           in
                           if
                             (List.mem op compare_ops || op = minus_op)
                             && (tainted a || tainted b)
                           then
                             report_at e.exp_loc
                               (Printf.sprintf
                                  "raw %s on a TCP sequence value; sequence \
                                   space is circular — use Seq_num.%s"
                                  op_name
                                  (if op = minus_op then "diff"
                                   else "lt/le/gt/ge"))
                           else if
                             List.mem op compare_ops
                             && ((is_engine_now a && is_int_literal b)
                                || (is_int_literal a && is_engine_now b))
                           then
                             report_at e.exp_loc
                               (Printf.sprintf
                                  "comparing Engine.now against a bare \
                                   integer mixes an absolute timestamp with \
                                   a duration; compare elapsed time (now - \
                                   t0) against the threshold instead")
                       | _ -> ());
                    Tast_iterator.default_iterator.expr sub e);
              }
            in
            iter.Tast_iterator.structure iter str
          end
      | _ -> ())
