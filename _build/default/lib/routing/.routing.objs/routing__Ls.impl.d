lib/routing/ls.ml: Engine Hashtbl Int32 Ip List Netsim Option Packet Rt_msg Stdext Udp
