lib/stdext/rng.mli:
