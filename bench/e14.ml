(* E14 — Transport (end-host) fast path.

   E13 made the gateway's per-packet budget cheap; the paper's §7 puts
   the remaining cost of the full TCP service at the endpoints.  This
   experiment measures the three end-host optimisations together:
   Van Jacobson header prediction on receive, allocation-free segment
   emission on send, and the hashed timing wheel under the protocol
   timers.

   Phase 1 pushes a bulk TCP transfer through one gateway (a — g1 — b)
   twice — fast path + wheel on, then both off — and reports segments/s
   of host CPU and allocated words per segment.  Phase 2 churns timers
   the way 200 interactive connections do (periodic small writes arming
   retransmission and delayed-ACK timers constantly) and reports timer
   arms per second of wall clock on the wheel vs the heap.

   The two paths are behaviourally identical (test/test_tcp_fastpath.ml
   proves byte-identical delivery); only the cost differs.  Results go
   to stdout and BENCH_tcp.json. *)

open Catenet

let full_transfer_bytes = 64 * 1024 * 1024
let full_churn_conns = 200
let churn_write_bytes = 64
let churn_period_us = 5_000
let churn_duration_us = 4_000_000

let gigabit =
  Netsim.profile ~bandwidth_bps:1_000_000_000 ~delay_us:100 ~mtu:1500
    ~queue_capacity:4096 "e14-gigabit"

type outcome = { sps : float; words_per_seg : float }

(* Phase 1: one bulk transfer, host fast path + wheel on or off.  The
   gateway keeps its (PR-1) defaults in both runs, so the difference is
   purely the endpoints'.  The driver is deliberately leaner than
   Apps.Bulk: a reusable send chunk and a byte-counting sink, so the
   measurement is the protocol machinery, not the workload generator
   (equivalence of the two paths under real payloads is the fastpath
   test suite's job). *)
let run_transfer ~fast ~total =
  let t = Internet.create ~seed:42 () in
  let a = Internet.add_host t "a" in
  let g = Internet.add_gateway t "g1" in
  let b = Internet.add_host t "b" in
  ignore (Internet.connect t gigabit a.Internet.h_node g.Internet.g_node);
  ignore (Internet.connect t gigabit g.Internet.g_node b.Internet.h_node);
  Internet.start t;
  Tcp.set_fast_path a.Internet.h_tcp fast;
  Tcp.set_fast_path b.Internet.h_tcp fast;
  let eng = Internet.engine t in
  Engine.set_timer_wheel eng fast;
  let received = ref 0 in
  ignore
    (Tcp.listen b.Internet.h_tcp ~port:80 ~accept:(fun c ->
         Tcp.on_receive c (fun data -> received := !received + Bytes.length data);
         Tcp.on_peer_fin c (fun () -> Tcp.close c)));
  let c =
    Tcp.connect a.Internet.h_tcp
      ~dst:(Internet.addr_of t b.Internet.h_node)
      ~dst_port:80 ()
  in
  let chunk = Bytes.make 16384 'd' in
  let sent = ref 0 in
  let rec pump () =
    if !sent < total then begin
      let space = Tcp.send_space c in
      if space > 0 then begin
        let n = min space (min (Bytes.length chunk) (total - !sent)) in
        let buf = if n = Bytes.length chunk then chunk else Bytes.sub chunk 0 n in
        sent := !sent + Tcp.send c buf
      end;
      if !sent >= total then Tcp.close c else Engine.after eng 2_000 pump
    end
  in
  Tcp.on_established c pump;
  let alloc0 = Gc.allocated_bytes () in
  let wall0 = Unix.gettimeofday () in
  Internet.run_until_idle t;
  let wall = Unix.gettimeofday () -. wall0 in
  let alloc = Gc.allocated_bytes () -. alloc0 in
  if !received <> total then
    failwith (Printf.sprintf "E14: delivered %d of %d bytes" !received total);
  let st = Tcp.stats c in
  (* Segments the sending host processed: data out plus ACKs in.  The
     receiving host does the mirror-image work, so per-host cost is this
     count against half the measured allocation — the ratio fast/slow is
     what matters and is insensitive to the convention. *)
  let segments = st.Tcp.segs_out + st.Tcp.segs_in in
  {
    sps = float_of_int segments /. wall;
    words_per_seg = alloc /. 8.0 /. float_of_int segments;
  }

(* Phase 2: timer churn.  Each connection writes a small burst every
   5 ms for four simulated seconds: every burst arms a retransmission
   timer at the sender and a delayed-ACK timer at the receiver, the
   steady-state load timing wheels were invented for. *)
let run_churn ~fast ~conns =
  let t = Internet.create ~seed:7 () in
  let a = Internet.add_host t "a" in
  let b = Internet.add_host t "b" in
  ignore (Internet.connect t gigabit a.Internet.h_node b.Internet.h_node);
  Internet.start t;
  Tcp.set_fast_path a.Internet.h_tcp fast;
  Tcp.set_fast_path b.Internet.h_tcp fast;
  let eng = Internet.engine t in
  Engine.set_timer_wheel eng fast;
  ignore
    (Tcp.listen b.Internet.h_tcp ~port:9 ~accept:(fun c ->
         Tcp.on_receive c (fun _ -> ())));
  let payload = Bytes.make churn_write_bytes 'c' in
  let dst = Internet.addr_of t b.Internet.h_node in
  for _ = 1 to conns do
    let c = Tcp.connect a.Internet.h_tcp ~dst ~dst_port:9 () in
    Tcp.on_established c (fun () ->
        let rec tick () =
          if Engine.now eng < churn_duration_us then begin
            ignore (Tcp.send c payload);
            Engine.after eng churn_period_us tick
          end
          else Tcp.close c
        in
        tick ())
  done;
  let starts0 = Engine.timer_starts eng in
  let wall0 = Unix.gettimeofday () in
  Internet.run_until_idle t;
  let wall = Unix.gettimeofday () -. wall0 in
  let starts = Engine.timer_starts eng - starts0 in
  if starts = 0 then failwith "E14: churn armed no timers";
  float_of_int starts /. wall

let write_json ~total ~slow ~fast ~slow_tops ~fast_tops ~speedup ~alloc_ratio =
  let open Trace.Json in
  let outcome o tops =
    Obj
      [ ("segments_per_sec", Float o.sps);
        ("words_per_segment", Float o.words_per_seg);
        ("timer_ops_per_sec", Float tops) ]
  in
  Util.write_json "BENCH_tcp.json"
    (Obj
       [ ("experiment", Str "E14");
         ("topology", Str "a - g1 - b");
         ("transfer_bytes", Int total);
         ("fast", outcome fast fast_tops);
         ("slow", outcome slow slow_tops);
         ("speedup", Float speedup);
         ("alloc_ratio", Float alloc_ratio) ])

let run () =
  Util.banner "E14" "transport (end-host) fast path"
    "header prediction + allocation-free emission + a timing wheel beat \
     the textbook receive/send/timer paths by >=1.5x segments/s and >=2x \
     fewer words allocated per segment";
  let total = Util.scaled full_transfer_bytes in
  let conns = Util.scaled full_churn_conns in
  (* Simulations are deterministic; only the wall clock is noisy.  Take
     the best of two runs per configuration, standard practice for
     throughput benches on a shared machine. *)
  let best2 f = let a = f () in let b = f () in if b.sps > a.sps then b else a in
  let slow = best2 (fun () -> run_transfer ~fast:false ~total) in
  let fast = best2 (fun () -> run_transfer ~fast:true ~total) in
  let slow_tops = max (run_churn ~fast:false ~conns) (run_churn ~fast:false ~conns) in
  let fast_tops = max (run_churn ~fast:true ~conns) (run_churn ~fast:true ~conns) in
  let speedup = fast.sps /. slow.sps in
  let alloc_ratio = slow.words_per_seg /. fast.words_per_seg in
  Util.table
    [ "path"; "segments/s"; "words/segment"; "timer arms/s" ]
    [
      [ "slow (rfc793 dispatch)"; Printf.sprintf "%.0f" slow.sps;
        Printf.sprintf "%.1f" slow.words_per_seg;
        Printf.sprintf "%.0f" slow_tops ];
      [ "fast (prediction)"; Printf.sprintf "%.0f" fast.sps;
        Printf.sprintf "%.1f" fast.words_per_seg;
        Printf.sprintf "%.0f" fast_tops ];
    ];
  Util.note "speedup %.2fx, %.2fx fewer words/segment over a %d-byte transfer"
    speedup alloc_ratio total;
  Util.note "timer churn: %d connections, wheel %.2fx the heap's arm rate"
    conns (fast_tops /. slow_tops);
  write_json ~total ~slow ~fast ~slow_tops ~fast_tops ~speedup ~alloc_ratio
