bench/e08.ml: Bytes Catenet Engine Hashtbl Ip List Netsim Packet Printf Routing Udp Util
