lib/tcp/rto.ml:
