(** The name/service layer (E21).

    The 1988 architecture identifies hosts by address alone; this
    subsystem adds what the real Internet had to bolt on to be usable —
    names — as four small pieces over UDP:

    - {!Wire} — a 20-byte fixed-width name protocol (lint-checked
      layout): query/response, TTL, rcode, three integer labels
      mirroring the root -> region -> host hierarchy.
    - {!Cache} — bounded LRU+TTL soft state for answers, negative
      answers and delegations.
    - {!Server} — authoritative endpoints holding zone configuration
      (hard state), with stock root and region zone closures.
    - {!Resolver} — the caching recursing resolver with single-flight
      dedup and crash amnesia via [Ip.Stack.on_soft_flush].
    - {!Service} — anycast: one name, many replicas, health-probed,
      nearest-by-region-hops selection. *)

module Wire = Names_wire
module Cache = Cache
module Server = Server
module Service = Service
module Resolver = Resolver
