(** Per-flow resource accounting at a gateway (goal 7).

    The 1988 paper notes that accounting was a poor fit for a pure
    datagram network because the gateway must reconstruct flows from
    individual packets.  This module does exactly that reconstruction:
    each forwarded datagram is attributed to a flow identified by
    (src, dst, protocol, src port, dst port), with ports recovered by
    peeking into the transport header — feasible precisely because the
    datagram is self-describing. *)

type flow = {
  src : Packet.Addr.t;
  dst : Packet.Addr.t;
  proto : Packet.Ipv4.Proto.t;
  src_port : int;  (** 0 when the protocol has no ports. *)
  dst_port : int;
}

type usage = { packets : int; bytes : int }

type t

val create : unit -> t

val record : t -> Packet.Ipv4.header -> payload:bytes -> wire_bytes:int -> unit
(** Attribute one forwarded datagram.  [payload] is the IP payload (for
    port extraction from first-fragment transport headers); [wire_bytes]
    is what the gateway actually carried, header included. *)

val flows : t -> (flow * usage) list
(** Ledger, largest byte counts first. *)

val lookup : t -> flow -> usage option

val total : t -> usage

val pp_flow : Format.formatter -> flow -> unit
