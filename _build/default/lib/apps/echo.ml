module Samples = Stdext.Stats.Samples

let serve tcp ~port =
  let accept conn =
    Tcp.on_receive conn (fun data -> ignore (Tcp.send conn data));
    Tcp.on_peer_fin conn (fun () -> Tcp.close conn)
  in
  ignore (Tcp.listen tcp ~port ~accept)

type client = {
  c_eng : Engine.t;
  c_conn : Tcp.conn;
  c_size : int;
  c_period : int;
  c_count : int;
  c_rtts : Samples.t;
  mutable c_inflight_at : int option;
  mutable c_received : int; (* bytes of the pending echo *)
  mutable c_done : int;
  mutable c_failed : bool;
}

let rtts c = c.c_rtts
let completed c = c.c_done
let failed c = c.c_failed

let interactive_config tcp =
  ignore tcp;
  { Tcp.default_config with Tcp.nagle = false }

let client tcp ~dst ~dst_port ~message_bytes ~period_us ~count () =
  let eng = Ip.Stack.engine (Tcp.stack tcp) in
  let conn =
    Tcp.connect tcp ~config:(interactive_config tcp) ~dst ~dst_port ()
  in
  let c =
    {
      c_eng = eng;
      c_conn = conn;
      c_size = message_bytes;
      c_period = period_us;
      c_count = count;
      c_rtts = Samples.create ();
      c_inflight_at = None;
      c_received = 0;
      c_done = 0;
      c_failed = false;
    }
  in
  let rec fire () =
    if (not c.c_failed) && c.c_done < c.c_count && c.c_inflight_at = None
    then begin
      c.c_inflight_at <- Some (Engine.now eng);
      c.c_received <- 0;
      ignore (Tcp.send conn (Bytes.make c.c_size 'k'))
    end
  and maybe_next () =
    if c.c_done < c.c_count then Engine.after eng c.c_period fire
    else Tcp.close conn
  in
  Tcp.on_established conn (fun () -> fire ());
  Tcp.on_receive conn (fun data ->
      c.c_received <- c.c_received + Bytes.length data;
      if c.c_received >= c.c_size then begin
        (match c.c_inflight_at with
        | Some at ->
            Samples.add c.c_rtts (Engine.to_sec (Engine.now eng - at))
        | None -> ());
        c.c_inflight_at <- None;
        c.c_done <- c.c_done + 1;
        maybe_next ()
      end);
  Tcp.on_close conn (fun reason ->
      match reason with
      | Tcp.Graceful -> ()
      | Tcp.Reset | Tcp.Timed_out | Tcp.Refused -> c.c_failed <- true);
  c
