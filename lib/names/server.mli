(** Authoritative name-server endpoint.

    A UDP socket at the authority port plus a pure closure from query
    to answer.  A zone is {e hard} state — configuration, like
    connected routes — so a crashed authority reboots with its zone
    intact; all the name system's soft state lives in resolver caches
    ({!Cache}). *)

val well_known_port : int
(** 5353 — where authorities listen (resolvers listen on 53). *)

type answer =
  | Answer of { aa : bool; rcode : int; ttl_s : int; answer : int }
  | Referral of { server : int; ttl_s : int }
      (** Non-terminal: ask [server] (address bits) next; sent with
          [rcode_referral] and qtype {!Names_wire.qtype_deleg}. *)

type stats = {
  mutable queries : int;
  mutable referrals : int;
  mutable refused : int;  (** RD queries — authorities do no recursion. *)
  mutable bad : int;  (** Undecodable datagrams, or responses sent at us. *)
}

type t

val create :
  udp:Udp.t ->
  ?src:Packet.Addr.t ->
  ?port:int ->
  authority:(src:Packet.Addr.t -> Names_wire.t -> answer) ->
  unit ->
  t
(** Bind the authority at [port] (default {!well_known_port}).  [src]
    pins the response source address (see {!Udp.sendto}).  [authority]
    sees the querier's address so anycast zones can answer
    topology-dependently. *)

val stats : t -> stats

(** {2 Stock zone closures} *)

val region_authority :
  region:int ->
  hosts:int ->
  host_addr_bits:(int -> int) ->
  ttl_s:int ->
  src:Packet.Addr.t ->
  Names_wire.t ->
  answer
(** The zone for one region's host names (region, 0..hosts-1, 0):
    authoritative answers with [ttl_s], NXNAME past [hosts], Refused
    for any other region's names (lame delegation fails loudly). *)

val root_authority :
  regions:int ->
  region_server_bits:(int -> int) ->
  deleg_ttl_s:int ->
  svc:(src:Packet.Addr.t -> Names_wire.t -> answer) ->
  src:Packet.Addr.t ->
  Names_wire.t ->
  answer
(** The root zone: host queries for region [r < regions] get a referral
    to [region_server_bits r] cacheable for [deleg_ttl_s]; service
    queries are delegated to [svc] (see {!Service.answer_for}). *)
