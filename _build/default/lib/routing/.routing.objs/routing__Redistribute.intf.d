lib/routing/redistribute.mli: Dv Engine Ls
