module Proto = struct
  type t = Icmp | Tcp | Udp | Other of int

  let to_int = function Icmp -> 1 | Tcp -> 6 | Udp -> 17 | Other v -> v

  let of_int = function 1 -> Icmp | 6 -> Tcp | 17 -> Udp | v -> Other v

  let pp fmt = function
    | Icmp -> Format.pp_print_string fmt "icmp"
    | Tcp -> Format.pp_print_string fmt "tcp"
    | Udp -> Format.pp_print_string fmt "udp"
    | Other v -> Format.fprintf fmt "proto-%d" v
end

module Tos = struct
  type t = Routine | Low_delay | High_throughput | High_reliability

  (* Classic RFC 791 ToS octet: D bit 0x10, T bit 0x08, R bit 0x04. *)
  let to_int = function
    | Routine -> 0x00
    | Low_delay -> 0x10
    | High_throughput -> 0x08
    | High_reliability -> 0x04

  let of_int v =
    if v land 0x10 <> 0 then Low_delay
    else if v land 0x08 <> 0 then High_throughput
    else if v land 0x04 <> 0 then High_reliability
    else Routine

  let pp fmt = function
    | Routine -> Format.pp_print_string fmt "routine"
    | Low_delay -> Format.pp_print_string fmt "low-delay"
    | High_throughput -> Format.pp_print_string fmt "high-throughput"
    | High_reliability -> Format.pp_print_string fmt "high-reliability"
end

type header = {
  tos : Tos.t;
  id : int;
  dont_fragment : bool;
  more_fragments : bool;
  frag_offset : int;
  ttl : int;
  proto : Proto.t;
  src : Addr.t;
  dst : Addr.t;
}

let header_size = 20
let max_datagram = 65535

(* Machine-checked wire contract: catenet-lint verifies every constant
   byte access in encode/encode_into/peek/patch_* lands on these field
   boundaries, that the table is gapless, and that encode and peek
   cover the same bytes. *)
let layout : (string * int * int) list =
  [ ("ver_ihl", 0, 1);
    ("tos", 1, 1);
    ("total_len", 2, 2);
    ("id", 4, 2);
    ("flags_frag", 6, 2);
    ("ttl", 8, 1);
    ("proto", 9, 1);
    ("checksum", 10, 2);
    ("src", 12, 4);
    ("dst", 16, 4) ]

let make_header ?(tos = Tos.Routine) ?(id = 0) ?(dont_fragment = false)
    ?(more_fragments = false) ?(frag_offset = 0) ?(ttl = 64) ~proto ~src ~dst
    () =
  { tos; id; dont_fragment; more_fragments; frag_offset; ttl; proto; src; dst }

type error =
  [ `Truncated | `Bad_version of int | `Bad_checksum | `Bad_header of string ]

let pp_error fmt = function
  | `Truncated -> Format.pp_print_string fmt "truncated datagram"
  | `Bad_version v -> Format.fprintf fmt "bad IP version %d" v
  | `Bad_checksum -> Format.pp_print_string fmt "bad header checksum"
  | `Bad_header m -> Format.fprintf fmt "bad header: %s" m

let encode h ~payload =
  let total = header_size + Bytes.length payload in
  if total > max_datagram then invalid_arg "Ipv4.encode: datagram too large";
  if h.id < 0 || h.id > 0xffff then invalid_arg "Ipv4.encode: bad id";
  if h.ttl < 0 || h.ttl > 255 then invalid_arg "Ipv4.encode: bad ttl";
  if h.frag_offset < 0 || h.frag_offset > 0xffff * 8 || h.frag_offset mod 8 <> 0
  then invalid_arg "Ipv4.encode: bad fragment offset";
  let w = Stdext.Bytio.W.create total in
  let module W = Stdext.Bytio.W in
  W.u8 w ((4 lsl 4) lor 5);
  W.u8 w (Tos.to_int h.tos);
  W.u16 w total;
  W.u16 w h.id;
  let flags =
    (if h.dont_fragment then 0x4000 else 0)
    lor (if h.more_fragments then 0x2000 else 0)
    lor (h.frag_offset / 8)
  in
  W.u16 w flags;
  W.u8 w h.ttl;
  W.u8 w (Proto.to_int h.proto);
  W.u16 w 0 (* checksum placeholder *);
  W.u32 w (Addr.to_int32 h.src);
  W.u32 w (Addr.to_int32 h.dst);
  W.bytes w payload;
  let buf = W.contents w in
  let csum = Checksum.of_bytes buf ~pos:0 ~len:header_size in
  Bytes.set_uint16_be buf 10 csum;
  buf

(* Allocation-free counterpart of {!encode}: [frame] already carries the
   IP payload at [header_size]; write the header into the reserved prefix.
   Byte-for-byte identical output to {!encode}. *)
let encode_into h frame =
  let total = Bytes.length frame in
  if total < header_size || total > max_datagram then
    invalid_arg "Ipv4.encode_into: bad frame size";
  if h.id < 0 || h.id > 0xffff then invalid_arg "Ipv4.encode_into: bad id";
  if h.ttl < 0 || h.ttl > 255 then invalid_arg "Ipv4.encode_into: bad ttl";
  if h.frag_offset < 0 || h.frag_offset > 0xffff * 8 || h.frag_offset mod 8 <> 0
  then invalid_arg "Ipv4.encode_into: bad fragment offset";
  Bytes.set_uint8 frame 0 ((4 lsl 4) lor 5);
  Bytes.set_uint8 frame 1 (Tos.to_int h.tos);
  Bytes.set_uint16_be frame 2 total;
  Bytes.set_uint16_be frame 4 h.id;
  let flags =
    (if h.dont_fragment then 0x4000 else 0)
    lor (if h.more_fragments then 0x2000 else 0)
    lor (h.frag_offset / 8)
  in
  Bytes.set_uint16_be frame 6 flags;
  Bytes.set_uint8 frame 8 h.ttl;
  Bytes.set_uint8 frame 9 (Proto.to_int h.proto);
  Bytes.set_uint16_be frame 10 0 (* checksum placeholder *);
  Bytes.set_int32_be frame 12 (Addr.to_int32 h.src);
  Bytes.set_int32_be frame 16 (Addr.to_int32 h.dst);
  let csum = Checksum.of_bytes frame ~pos:0 ~len:header_size in
  Bytes.set_uint16_be frame 10 csum

let peek buf =
  let len = Bytes.length buf in
  if len < header_size then Error `Truncated
  else begin
    let b0 = Bytes.get_uint8 buf 0 in
    let version = b0 lsr 4 and ihl = b0 land 0xf in
    if version <> 4 then Error (`Bad_version version)
    else if ihl <> 5 then Error (`Bad_header "options unsupported (IHL<>5)")
    else if not (Checksum.valid buf ~pos:0 ~len:header_size) then
      Error `Bad_checksum
    else begin
      let total = Bytes.get_uint16_be buf 2 in
      if total < header_size || total > len then Error `Truncated
      else begin
        let id = Bytes.get_uint16_be buf 4 in
        let flags = Bytes.get_uint16_be buf 6 in
        let ttl = Bytes.get_uint8 buf 8 in
        let proto = Proto.of_int (Bytes.get_uint8 buf 9) in
        let src = Addr.of_int32 (Bytes.get_int32_be buf 12) in
        let dst = Addr.of_int32 (Bytes.get_int32_be buf 16) in
        Ok
          {
            tos = Tos.of_int (Bytes.get_uint8 buf 1);
            id;
            dont_fragment = flags land 0x4000 <> 0;
            more_fragments = flags land 0x2000 <> 0;
            frag_offset = (flags land 0x1fff) * 8;
            ttl;
            proto;
            src;
            dst;
          }
      end
    end
  end

let payload_of buf =
  let total = Bytes.get_uint16_be buf 2 in
  Bytes.sub buf header_size (total - header_size)

let decode buf =
  match peek buf with
  | Error e -> Error e
  | Ok h -> Ok (h, payload_of buf)

let patch_ttl buf =
  let ttl = Bytes.get_uint8 buf 8 in
  if ttl = 0 then invalid_arg "Ipv4.patch_ttl: TTL already zero";
  (* TTL shares a 16-bit checksum word with the protocol byte. *)
  let old_word = Bytes.get_uint16_be buf 8 in
  let new_word = old_word - 0x100 in
  Bytes.set_uint16_be buf 8 new_word;
  let csum = Bytes.get_uint16_be buf 10 in
  Bytes.set_uint16_be buf 10 (Checksum.update_u16 csum ~old_word ~new_word)
[@@fastpath]

let pp_header fmt h =
  Format.fprintf fmt "%a -> %a %a ttl=%d id=%d%s%s off=%d tos=%a" Addr.pp
    h.src Addr.pp h.dst Proto.pp h.proto h.ttl h.id
    (if h.dont_fragment then " DF" else "")
    (if h.more_fragments then " MF" else "")
    h.frag_offset Tos.pp h.tos
