(** Discrete-event simulation engine.

    A single virtual clock (integer microseconds) and an event queue; every
    protocol timer, link transmission and application action in the system
    is an event on one engine.  Events scheduled for the same instant fire
    in scheduling order, so runs are fully deterministic. *)

type t

val create : unit -> t
(** A fresh engine with the clock at 0. *)

val now : t -> int
(** Current virtual time in microseconds.

    Convention, enforced by the catenet-lint [seqcmp] time rule: values
    from [now] are {e absolute timestamps}; integer literals in protocol
    code are {e durations}.  Never compare a timestamp against a bare
    literal — subtract two timestamps to get a duration first
    ([now t - t0 > timeout_us]), or add a duration to a timestamp to get
    a deadline.  Mixing the two classes silently breaks when a scenario
    starts the clock at a nonzero epoch. *)

val us : int -> int
(** Identity on microseconds; for call-site readability. *)

val ms : int -> int
(** Milliseconds to microseconds. *)

val sec : float -> int
(** Seconds to microseconds (rounded). *)

val to_sec : int -> float
(** Microseconds to seconds. *)

val schedule : t -> at:int -> (unit -> unit) -> unit
(** [schedule t ~at f] runs [f] when the clock reaches [at].  Scheduling in
    the past is an error ([Invalid_argument]). *)

val after : t -> int -> (unit -> unit) -> unit
(** [after t d f] runs [f] [d] microseconds from now. *)

(** Cancellable timers, used for protocol timeouts that are usually
    cancelled before firing (retransmission, delayed ACK, reassembly).

    Near-future timers are kept on a hashed timing wheel (O(1) arm, no
    sifting; O(1) disarm, a flag) rather than the main event heap;
    far-future timers fall back to the heap.  The two queues are merged
    in exact (time, sequence) order and cancelled shells are discarded
    identically on both, so firing order — and therefore every
    simulation — is identical to a single-heap engine. *)
module Timer : sig
  type handle

  val start : t -> after:int -> (unit -> unit) -> handle
  (** Arm a one-shot timer. *)

  val cancel : handle -> unit
  (** Disarm; harmless if already fired or cancelled. *)

  val active : handle -> bool
  (** [true] while armed and not yet fired. *)
end

val set_timer_wheel : t -> bool -> unit
(** Route subsequent {!Timer.start} calls through the timing wheel ([true],
    the default) or the event heap ([false]).  Affects performance only;
    firing order is identical either way.  Existing armed timers stay
    where they are. *)

val timer_wheel : t -> bool
(** Current {!set_timer_wheel} setting. *)

val timer_starts : t -> int
(** Cumulative count of {!Timer.start} calls, for instrumentation. *)

val pending : t -> int
(** Number of events still queued (including cancelled timer shells). *)

val step : t -> bool
(** Execute the next live event, discarding any cancelled shells ahead of
    it.  [false] if no live event remained. *)

val run : ?until:int -> ?max_events:int -> t -> unit
(** Drain the queue.  [until] stops the clock from advancing past the given
    time (events at exactly [until] still run); [max_events] bounds work as
    a runaway guard. *)
