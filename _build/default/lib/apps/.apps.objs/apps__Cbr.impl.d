lib/apps/cbr.ml: Bytes Engine Hashtbl Int32 Ip Stdext Udp
