lib/apps/pattern.ml: Bytes Char
