(* E8 — Distributed management (Clark §6, goal 4).

   "Some of the most significant problems with the Internet today relate
   to lack of sufficient tools for distributed management" — but the basic
   mechanism worked: gateways operated by different organizations exchange
   routing information and form one internet.  Here the two domains do not
   even run the same interior protocol: domain A is a distance-vector
   region with fast timers, domain B a link-state region with its own
   policies, and the border gateway participates in both, redistributing
   prefixes between them (the two-tier arrangement §6 describes).  An
   intra-domain failure in A is handled entirely by A's own machinery. *)

open Catenet

module Addr = Packet.Addr

let fast_dv =
  {
    Routing.Dv.default_config with
    Routing.Dv.period_us = 800_000;
    timeout_us = 2_800_000;
    gc_us = 1_600_000;
    carrier_poll_us = 200_000;
  }

let ls_cfg =
  {
    Routing.Ls.default_config with
    Routing.Ls.hello_us = 400_000;
    refresh_us = 4_000_000;
  }

type world = {
  eng : Engine.t;
  net : Netsim.t;
  ha_ip : Ip.Stack.t;
  hb_addr : Addr.t;
  l_a1a3 : Netsim.link_id;
  redist : Routing.Redistribute.t;
}

(* Domain A: a1,a2,a3 triangle (DV).  Domain B: b1,b2,b3 triangle (LS).
   Border: a3 -- b1, with a3 running both protocols + redistribution.
   Host hA on a1, hB on b3. *)
let build () =
  let eng = Engine.create () in
  let net = Netsim.create ~seed:31 eng in
  let mk name = Netsim.add_node net name in
  let a1 = mk "a1" and a2 = mk "a2" and a3 = mk "a3" in
  let b1 = mk "b1" and b2 = mk "b2" and b3 = mk "b3" in
  let ha = mk "hA" and hb = mk "hB" in
  let p = Netsim.profile "leg" ~delay_us:3_000 in
  let link = Netsim.add_link net p in
  let l_a1a2 = link a1 a2 in
  let l_a2a3 = link a2 a3 in
  let l_a1a3 = link a1 a3 in
  let l_b1b2 = link b1 b2 in
  let l_b2b3 = link b2 b3 in
  let l_b1b3 = link b1 b3 in
  let l_border = link a3 b1 in
  let l_ha = link ha a1 in
  let l_hb = link hb b3 in
  let stacks = Hashtbl.create 8 in
  let stack node ~forwarding =
    match Hashtbl.find_opt stacks node with
    | Some s -> s
    | None ->
        let s = Ip.Stack.create ~forwarding net node in
        Hashtbl.add stacks node s;
        s
  in
  let addr_of_link l side = Addr.v 10 1 (l + 1) (side + 1) in
  let configure l ~fwd_a ~fwd_b =
    let (na, ia), (nb, ib) = Netsim.endpoints net l in
    Ip.Stack.configure_iface (stack na ~forwarding:fwd_a) ia
      ~addr:(addr_of_link l 0) ~prefix_len:24;
    Ip.Stack.configure_iface (stack nb ~forwarding:fwd_b) ib
      ~addr:(addr_of_link l 1) ~prefix_len:24
  in
  List.iter
    (fun l -> configure l ~fwd_a:true ~fwd_b:true)
    [ l_a1a2; l_a2a3; l_a1a3; l_b1b2; l_b2b3; l_b1b3; l_border ];
  configure l_ha ~fwd_a:false ~fwd_b:true;
  configure l_hb ~fwd_a:false ~fwd_b:true;
  let default host l ~gw_side =
    Ip.Route_table.add
      (Ip.Stack.table (stack host ~forwarding:false))
      {
        Ip.Route_table.prefix = Addr.Prefix.default;
        iface = 0;
        next_hop = Some (addr_of_link l gw_side);
        metric = 1;
      }
  in
  default ha l_ha ~gw_side:1;
  default hb l_hb ~gw_side:1;
  (* Daemons.  Each gateway gets one UDP instance shared by its daemons. *)
  let udp_of = Hashtbl.create 8 in
  let udp node =
    match Hashtbl.find_opt udp_of node with
    | Some u -> u
    | None ->
        let u = Udp.create (stack node ~forwarding:true) in
        Hashtbl.add udp_of node u;
        u
  in
  (* Neighbor helper: iface of [node] facing [peer] on link [l]. *)
  let iface_on node l =
    let (na, ia), (_, ib) = Netsim.endpoints net l in
    if na = node then ia else ib
  in
  let peer_addr node l =
    let (na, _), (_, _) = Netsim.endpoints net l in
    if na = node then addr_of_link l 1 else addr_of_link l 0
  in
  let dv node links =
    let d = Routing.Dv.create ~config:fast_dv (udp node) in
    List.iter
      (fun l -> Routing.Dv.add_neighbor d (iface_on node l) (peer_addr node l))
      links;
    Routing.Dv.start d;
    d
  in
  let ls node links =
    let d = Routing.Ls.create ~config:ls_cfg (udp node) in
    List.iter
      (fun l ->
        Routing.Ls.add_neighbor d (iface_on node l) (peer_addr node l) ~cost:1)
      links;
    Routing.Ls.start d;
    d
  in
  let _ = dv a1 [ l_a1a2; l_a1a3 ] in
  let _ = dv a2 [ l_a1a2; l_a2a3 ] in
  let border_dv = dv a3 [ l_a2a3; l_a1a3 ] in
  let border_ls = ls a3 [ l_border ] in
  let _ = ls b1 [ l_b1b2; l_b1b3; l_border ] in
  let _ = ls b2 [ l_b1b2; l_b2b3 ] in
  let _ = ls b3 [ l_b2b3; l_b1b3 ] in
  let redist =
    Routing.Redistribute.create ~period_us:800_000 eng ~dv:border_dv
      ~ls:border_ls
  in
  {
    eng;
    net;
    ha_ip = stack ha ~forwarding:false;
    hb_addr = addr_of_link l_hb 0;
    l_a1a3;
    redist;
  }

(* Ping hB from hA [count] times; return replies received. *)
let probe w ~count =
  let got = ref 0 in
  Ip.Stack.set_echo_reply_handler w.ha_ip (fun ~id:_ ~seq:_ ~payload:_ ->
      incr got);
  for i = 0 to count - 1 do
    Engine.after w.eng (i * 200_000) (fun () ->
        Ip.Stack.send_echo_request w.ha_ip ~dst:w.hb_addr ~id:1 ~seq:i
          ~payload:(Bytes.make 16 'x'))
  done;
  Engine.run
    ~until:(Engine.now w.eng + Engine.sec ((0.2 *. float_of_int count) +. 2.0))
    w.eng;
  !got

let convergence_time w =
  let answered = ref None in
  Ip.Stack.set_echo_reply_handler w.ha_ip (fun ~id:_ ~seq:_ ~payload:_ ->
      if !answered = None then answered := Some (Engine.now w.eng));
  let rec try_ping i =
    if !answered = None && i < 300 then begin
      Ip.Stack.send_echo_request w.ha_ip ~dst:w.hb_addr ~id:1 ~seq:i
        ~payload:(Bytes.make 16 'x');
      Engine.after w.eng 100_000 (fun () -> try_ping (i + 1))
    end
  in
  try_ping 0;
  Engine.run ~until:(Engine.sec 40.0) w.eng;
  !answered

let run () =
  Util.banner "E8" "Distributed management: two domains, two protocols"
    "independently administered routing regions — running different \
     interior protocols — interoperate across a border gateway";
  let w = build () in
  (match convergence_time w with
  | Some at ->
      Printf.printf
        "  cold-start cross-domain (DV region -> LS region) convergence: \
         first reply at t=%.1fs\n"
        (Engine.to_sec at)
  | None -> print_endline "  never converged (!)");
  let before = probe w ~count:10 in
  Netsim.set_link_up w.net w.l_a1a3 false;
  Engine.run ~until:(Engine.now w.eng + Engine.sec 8.0) w.eng;
  let after = probe w ~count:10 in
  Util.table
    [ "phase"; "cross-domain pings answered" ]
    [
      [ "converged, all links up"; Printf.sprintf "%d/10" before ];
      [
        "after intra-A link failure + reconvergence"; Printf.sprintf "%d/10" after;
      ];
    ];
  Printf.printf "  redistribution rounds at the border: %d\n"
    (Routing.Redistribute.exchanges w.redist);
  Util.note
    "domain A (distance-vector, 0.8 s timers) healed itself with its own \
     machinery; domain B (link-state, different administration) never \
     changed a setting and never even learned which link failed — \
     management stayed local, connectivity stayed global"
