lib/packet/addr.ml: Format Int Int32 Printf String
