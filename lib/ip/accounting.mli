(** Per-flow resource accounting at a gateway (goal 7).

    The 1988 paper notes that accounting was a poor fit for a pure
    datagram network because the gateway must reconstruct flows from
    individual packets.  This module does exactly that reconstruction:
    each forwarded datagram is attributed to a flow identified by
    (src, dst, protocol, src port, dst port), with ports recovered by
    peeking into the transport header — feasible precisely because the
    datagram is self-describing. *)

type flow = {
  src : Packet.Addr.t;
  dst : Packet.Addr.t;
  proto : Packet.Ipv4.Proto.t;
  src_port : int;  (** 0 when the protocol has no ports. *)
  dst_port : int;
}

type usage = { mutable packets : int; mutable bytes : int }
(** Mutable so {!record} can bump a flow's tallies in place — one hash
    probe and two stores per datagram, no allocation after the flow's
    first packet.  The query functions below always return fresh copies,
    never the live record. *)

type t

val create : unit -> t

val record : t -> Packet.Ipv4.header -> payload:bytes -> wire_bytes:int -> unit
(** Attribute one forwarded datagram.  [payload] is the IP payload (for
    port extraction from first-fragment transport headers); [wire_bytes]
    is what the gateway actually carried, header included. *)

val flows : t -> (flow * usage) list
(** Ledger, largest byte counts first.  Usage values are copies. *)

val lookup : t -> flow -> usage option
(** A copy of the flow's current usage. *)

val total : t -> usage

val flow_count : t -> int

val pp_flow : Format.formatter -> flow -> unit

val flow_to_string : flow -> string

val to_json : t -> Trace.Json.t
(** The full ledger (flow count, totals, per-flow usage) as JSON; wired
    into [Internet.metrics] snapshots. *)

val metrics_items : t -> unit -> (string * Trace.Metrics.value) list
(** Pull-based summary source (flow count and totals) for
    [Trace.Metrics.register]. *)
