(* Differential tests for the transport fast path.  Header prediction,
   allocation-free emission and the timing wheel are pure performance
   substitutions: the same seeded network must produce byte-identical
   transfers, identical segment/retransmit counts and identical final
   connection state whether the fast path is on or off.  Every run here
   executes twice — fast path + wheel on, then both off (the legacy
   slow path) — and the two outcomes are compared field by field. *)

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

module Internet = Catenet.Internet

type outcome = {
  o_finished : bool;
  o_received : int;
  o_intact : bool;
  o_segs_out : int;
  o_segs_in : int;
  o_retransmits : int;
  o_dupacks : int;
  o_snd_una : int;
  o_clock : int;
}

(* One bulk transfer a — gateway — b under the given impairments; jitter
   reorders deliveries and loss provokes retransmission, so both the
   predicted and the unpredictable receive branches are exercised. *)
let run_transfer ~fast ~seed ~loss ~jitter_us ~total =
  let t = Internet.create ~seed ~routing:Internet.Static () in
  let a = Internet.add_host t "a" in
  let g = Internet.add_gateway t "g" in
  let b = Internet.add_host t "b" in
  let profile =
    Netsim.profile "impaired" ~delay_us:2_000 ~loss ~jitter_us
  in
  ignore (Internet.connect t profile a.Internet.h_node g.Internet.g_node);
  ignore (Internet.connect t profile g.Internet.g_node b.Internet.h_node);
  Internet.start t;
  Tcp.set_fast_path a.Internet.h_tcp fast;
  Tcp.set_fast_path b.Internet.h_tcp fast;
  Engine.set_timer_wheel (Internet.engine t) fast;
  let pseed = 7 * seed in
  let server = Apps.Bulk.serve b.Internet.h_tcp ~port:80 ~seed:pseed in
  let sender =
    Apps.Bulk.start a.Internet.h_tcp
      ~dst:(Internet.addr_of t b.Internet.h_node)
      ~dst_port:80 ~seed:pseed ~total ()
  in
  Internet.run_for t 60.0;
  let conn = Apps.Bulk.conn sender in
  let st = Tcp.stats conn in
  let received, intact =
    match Apps.Bulk.transfers server with
    | [ tr ] -> (tr.Apps.Bulk.received, tr.Apps.Bulk.intact)
    | _ -> (-1, false)
  in
  let outcome =
    {
      o_finished = Apps.Bulk.finished sender;
      o_received = received;
      o_intact = intact;
      o_segs_out = st.Tcp.segs_out;
      o_segs_in = st.Tcp.segs_in;
      o_retransmits = st.Tcp.retransmits;
      o_dupacks = st.Tcp.dupacks;
      o_snd_una = Tcp.snd_una conn;
      o_clock = Engine.now (Internet.engine t);
    }
  in
  (outcome, st.Tcp.fast_path_acks + st.Tcp.fast_path_data)

let pp_outcome o =
  Printf.sprintf
    "finished=%b received=%d intact=%b segs_out=%d segs_in=%d rexmit=%d \
     dupacks=%d snd_una=%d clock=%d"
    o.o_finished o.o_received o.o_intact o.o_segs_out o.o_segs_in
    o.o_retransmits o.o_dupacks o.o_snd_una o.o_clock

let test_clean_link_identical () =
  let fast, hits = run_transfer ~fast:true ~seed:3 ~loss:0.0 ~jitter_us:0
      ~total:150_000
  in
  let slow, slow_hits = run_transfer ~fast:false ~seed:3 ~loss:0.0 ~jitter_us:0
      ~total:150_000
  in
  check Alcotest.string "identical outcome" (pp_outcome slow) (pp_outcome fast);
  check Alcotest.bool "transfer completed" true
    (fast.o_finished && fast.o_intact && fast.o_received = 150_000);
  (* The sender of a bulk transfer receives a pure-ACK stream: header
     prediction must have handled (nearly all of) it. *)
  check Alcotest.bool
    (Printf.sprintf "fast path used (%d hits)" hits)
    true (hits > 0);
  check Alcotest.int "slow mode never predicts" 0 slow_hits

let test_lossy_link_identical () =
  (* Loss forces retransmissions and out-of-order arrival at the receiver;
     every such segment must take the unchanged RFC 793 path and the
     recovery trace must match the legacy implementation exactly. *)
  let fast, _ = run_transfer ~fast:true ~seed:9 ~loss:0.04 ~jitter_us:4_000
      ~total:120_000
  in
  let slow, _ = run_transfer ~fast:false ~seed:9 ~loss:0.04 ~jitter_us:4_000
      ~total:120_000
  in
  check Alcotest.string "identical outcome" (pp_outcome slow) (pp_outcome fast);
  check Alcotest.bool "recovery actually happened" true
    (fast.o_retransmits > 0 || fast.o_dupacks > 0);
  check Alcotest.bool "delivered intact" true
    (fast.o_intact && fast.o_received = 120_000)

let prop_fast_slow_equivalent =
  QCheck.Test.make
    ~name:"fast-path transfer identical to slow path under loss/reorder"
    ~count:10
    QCheck.(triple (1 -- 1_000) (0 -- 8) (0 -- 3))
    (fun (seed, loss_pct, jitter_ms) ->
      let loss = float_of_int loss_pct /. 100. in
      let jitter_us = jitter_ms * 1_000 in
      let fast, _ = run_transfer ~fast:true ~seed ~loss ~jitter_us
          ~total:60_000
      in
      let slow, _ = run_transfer ~fast:false ~seed ~loss ~jitter_us
          ~total:60_000
      in
      fast = slow)

let () =
  Alcotest.run "tcp-fastpath"
    [
      ( "equivalence",
        [
          Alcotest.test_case "clean link" `Quick test_clean_link_identical;
          Alcotest.test_case "lossy link" `Quick test_lossy_link_identical;
          qcheck prop_fast_slow_equivalent;
        ] );
    ]
