(* The scale engine: hierarchical region generator + pooled host state.
   What matters is the forwarding-state *shape* (core tables hold one
   aggregated prefix per region, never per-host routes) and that the
   generated catenet actually delivers traffic in every direction. *)

open Catenet

let check = Alcotest.check

let small () =
  Topo.build
    { Topo.default_config with Topo.core = 4; chords = 2; regions = 6;
      hosts_per_region = 10 }

let test_aggregation () =
  let t = small () in
  let hosts = Topo.regions t * Topo.hosts_per_region t in
  check Alcotest.int "pool holds every host" hosts
    (Hostpool.size (Topo.pool t));
  (* A core gateway knows connected /30s plus one /20 per region — never
     a host route.  With 60 hosts its table must stay far below the host
     count, and entries below /20 must not exist in the core at all. *)
  check Alcotest.bool "core tables aggregated" true
    (Topo.core_table_max t < Topo.regions t + 2 * Topo.core_size t + 4);
  for c = 0 to Topo.core_size t - 1 do
    List.iter
      (fun (r : Ip.Route_table.route) ->
        check Alcotest.bool "no host routes in the core" true
          (Packet.Addr.Prefix.length r.Ip.Route_table.prefix <= 30))
      (Ip.Route_table.entries (Ip.Stack.table (Topo.core_gw t c)))
  done;
  (* Region gateways carry the per-host routes instead. *)
  check Alcotest.bool "region gw holds host routes" true
    (Ip.Route_table.length (Ip.Stack.table (Topo.region_gw t 0))
    >= Topo.hosts_per_region t)

let test_cross_region_delivery () =
  let t = small () in
  let pool = Topo.pool t in
  (* Far corners: regions attached to different core gateways. *)
  let s = Topo.host_slot t ~region:0 ~index:0 in
  let d = Topo.host_slot t ~region:5 ~index:9 in
  check Alcotest.bool "send accepted" true
    (Hostpool.send pool s ~dst:(Topo.host_addr t ~region:5 ~index:9)
       (Bytes.make 64 'x'));
  Engine.run (Topo.engine t);
  check Alcotest.int "delivered across the core" 1 (Hostpool.rx_count pool d);
  check Alcotest.int "nothing went astray" 0 (Hostpool.rx_stray pool)

let test_intra_region_delivery () =
  let t = small () in
  let pool = Topo.pool t in
  let d = Topo.host_slot t ~region:2 ~index:3 in
  check Alcotest.bool "send accepted" true
    (Hostpool.send pool
       (Topo.host_slot t ~region:2 ~index:7)
       ~dst:(Topo.host_addr t ~region:2 ~index:3)
       (Bytes.make 32 'y'));
  Engine.run (Topo.engine t);
  check Alcotest.int "hairpinned at the region gw" 1
    (Hostpool.rx_count pool d)

let test_all_pairs_regions () =
  (* Every region can reach every other region (and itself). *)
  let t = small () in
  let pool = Topo.pool t in
  let n = Topo.regions t in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      ignore
        (Hostpool.send pool
           (Topo.host_slot t ~region:src ~index:src)
           ~dst:(Topo.host_addr t ~region:dst ~index:dst)
           (Bytes.make 16 'z'))
    done
  done;
  Engine.run (Topo.engine t);
  check Alcotest.int "every pair delivered" (n * n) (Hostpool.rx_total pool);
  check Alcotest.int "no strays" 0 (Hostpool.rx_stray pool)

let test_region_prefix_owns_hosts () =
  let t = small () in
  for r = 0 to Topo.regions t - 1 do
    let p = Topo.region_prefix r in
    for i = 0 to Topo.hosts_per_region t - 1 do
      check Alcotest.bool "host inside its region prefix" true
        (Packet.Addr.Prefix.mem (Topo.host_addr t ~region:r ~index:i) p)
    done
  done

let () =
  Alcotest.run "topo"
    [
      ( "shape",
        [
          Alcotest.test_case "aggregation" `Quick test_aggregation;
          Alcotest.test_case "addressing" `Quick test_region_prefix_owns_hosts;
        ] );
      ( "delivery",
        [
          Alcotest.test_case "cross-region" `Quick test_cross_region_delivery;
          Alcotest.test_case "intra-region" `Quick test_intra_region_delivery;
          Alcotest.test_case "all region pairs" `Quick test_all_pairs_regions;
        ] );
    ]
