(* E15 — Observability overhead (the flight-recorder contract).

   The trace subsystem promises that instrumentation is effectively free
   until switched on: with every event class disabled, each instrumented
   call site costs one mask load and a branch.  This experiment measures
   that contract three ways on one workload (the E13 transit chain):

   - disabled: recorder off — what every other bench and experiment pays;
   - metrics: recorder off, an [Internet.metrics] registry wired over
     every stack, link and transport and snapshotted at the end — the
     registry is pull-based, so the hot path should not notice it;
   - recorder: every event class enabled, 64Ki-entry ring — the full
     cost of constructing and recording events on the forwarding path.

   It then re-runs the untraced E13 and E14 fast-path workloads verbatim
   (same modules, same code) and compares against the figures
   BENCH_forwarding.json / BENCH_tcp.json recorded earlier in the same
   harness run: if merely *carrying* the instrumentation slowed the fast
   paths by more than the contract allows, the regression shows up here
   — and bin/check.sh fails the build on the committed artifact.

   Results go to stdout and BENCH_trace.json. *)

open Catenet

let full_datagrams = 20_000
let regression_budget_pct = 2.0

type mode = Disabled | Metrics_only | Recorder

let mode_name = function
  | Disabled -> "disabled"
  | Metrics_only -> "metrics"
  | Recorder -> "recorder"

type outcome = {
  dps : float;
  events : int; (* recorded, after ring overwrites *)
  emitted : int; (* recorded including overwritten *)
  snapshot_sources : int;
}

(* The E13 chain workload under one observability mode.  The topology and
   traffic are E13's (via its [run_once] building blocks would hide the
   metrics registry, so the chain is rebuilt here with the registry
   wired); throughput methodology matches E13: wall-clock the drain of a
   paced stream of max-size datagrams. *)
let run_mode mode ~datagrams =
  (match mode with
  | Recorder -> Trace.enable ~mask:Trace.Cls.all ()
  | Disabled | Metrics_only -> Trace.disable ());
  let t = Internet.create ~seed:42 () in
  let a = Internet.add_host t "a" in
  let b = Internet.add_host t "b" in
  let gws = List.init 4 (fun i -> Internet.add_gateway t (Printf.sprintf "g%d" (i + 1))) in
  let chain =
    [ a.Internet.h_node ]
    @ List.map (fun g -> g.Internet.g_node) gws
    @ [ b.Internet.h_node ]
  in
  let prof =
    Netsim.profile ~bandwidth_bps:1_000_000_000 ~delay_us:1 ~mtu:1500
      ~queue_capacity:4096 "e15-gigabit"
  in
  let rec wire = function
    | x :: (y :: _ as rest) ->
        ignore (Internet.connect t prof x y);
        wire rest
    | _ -> ()
  in
  wire chain;
  Internet.start t;
  let registry =
    match mode with
    | Metrics_only | Recorder -> Some (Internet.metrics t)
    | Disabled -> None
  in
  let proto = Packet.Ipv4.Proto.Other 99 in
  let delivered = ref 0 in
  Ip.Stack.register_proto b.Internet.h_ip proto (fun _ _ -> incr delivered);
  let eng = Internet.engine t in
  let dst = Internet.addr_of t b.Internet.h_node in
  let payload = Bytes.make 1_400 'o' in
  let rec send_next i =
    if i < datagrams then begin
      (match Ip.Stack.send a.Internet.h_ip ~proto ~dst payload with
      | Ok () -> ()
      | Error _ -> failwith "E15: send failed");
      Engine.after eng 15 (fun () -> send_next (i + 1))
    end
  in
  Engine.after eng 1 (fun () -> send_next 0);
  let wall0 = Unix.gettimeofday () in
  Internet.run_until_idle t;
  let wall = Unix.gettimeofday () -. wall0 in
  if !delivered <> datagrams then
    failwith
      (Printf.sprintf "E15: delivered %d of %d" !delivered datagrams);
  let snapshot_sources =
    match registry with
    | Some m -> List.length (Trace.Metrics.snapshot m)
    | None -> 0
  in
  let events = Trace.length () and emitted = Trace.emitted () in
  Trace.disable ();
  Trace.clear ();
  { dps = float_of_int datagrams /. wall; events; emitted; snapshot_sources }

(* Re-run the committed fast-path workloads with tracing fully disabled
   and compare to what this harness run's E13/E14 measured before.  Both
   sides execute the identical instrumented binary, so this guards the
   *runtime* half of the contract (the disabled-cost half is the
   disabled-vs-baseline delta measured above; the cross-PR half is
   guarded by bin/check.sh over the committed artifacts). *)
let regression_vs ~keys ~file ~measured =
  match Trace.Json.number_in_file ~keys (Util.out_path file) with
  | Some prior when prior > 0.0 -> Some ((prior -. measured) /. prior *. 100.0)
  | Some _ | None -> None

let run () =
  Util.banner "E15" "observability overhead"
    (Printf.sprintf
       "tracing disabled costs <%.0f%% on the e13/e14 fast paths; the full \
        recorder stays within the same simulation budget"
       regression_budget_pct);
  Trace.disable ();
  Trace.clear ();
  let datagrams = Util.scaled full_datagrams in
  let best2 f = let a = f () in let b = f () in if b.dps > a.dps then b else a in
  let disabled = best2 (fun () -> run_mode Disabled ~datagrams) in
  let metrics = best2 (fun () -> run_mode Metrics_only ~datagrams) in
  let recorder = best2 (fun () -> run_mode Recorder ~datagrams) in
  let pct_of base x = (base -. x) /. base *. 100.0 in
  Util.table
    [ "mode"; "datagrams/s"; "overhead"; "events held"; "events emitted" ]
    (List.map
       (fun (m, o) ->
         [ mode_name m; Printf.sprintf "%.0f" o.dps;
           Printf.sprintf "%.1f%%" (pct_of disabled.dps o.dps);
           string_of_int o.events; string_of_int o.emitted ])
       [ (Disabled, disabled); (Metrics_only, metrics); (Recorder, recorder) ]);
  Util.note "metrics snapshot covered %d sources" metrics.snapshot_sources;

  (* Fast-path regression guard: same binary, tracing disabled. *)
  let e13_best =
    let best = ref None in
    for _ = 1 to 2 do
      let o = E13.run_once ~fast:true ~datagrams in
      match !best with
      | Some b when b >= o.E13.dps -> ()
      | _ -> best := Some o.E13.dps
    done;
    Option.get !best
  in
  let e14_best =
    let total = Util.scaled (16 * 1024 * 1024) in
    let best = ref None in
    for _ = 1 to 2 do
      let o = E14.run_transfer ~fast:true ~total in
      match !best with
      | Some b when b >= o.E14.sps -> ()
      | _ -> best := Some o.E14.sps
    done;
    Option.get !best
  in
  let e13_reg =
    regression_vs
      ~keys:[ "fast"; "datagrams_per_sec" ]
      ~file:"BENCH_forwarding.json" ~measured:e13_best
  in
  let e14_reg =
    regression_vs
      ~keys:[ "fast"; "segments_per_sec" ]
      ~file:"BENCH_tcp.json" ~measured:e14_best
  in
  let show = function
    | Some p -> Printf.sprintf "%.1f%%" p
    | None -> "n/a (no prior artifact)"
  in
  Util.note "e13 fast path, tracing disabled: %.0f dgram/s (regression %s)"
    e13_best (show e13_reg);
  Util.note "e14 fast path, tracing disabled: %.0f seg/s (regression %s)"
    e14_best (show e14_reg);

  let open Trace.Json in
  let mode_json o =
    Obj
      [ ("datagrams_per_sec", Float o.dps);
        ("overhead_pct", Float (pct_of disabled.dps o.dps));
        ("events_held", Int o.events);
        ("events_emitted", Int o.emitted) ]
  in
  let reg = function Some p -> Float p | None -> Null in
  Util.write_json "BENCH_trace.json"
    (Obj
       [ ("experiment", Str "E15");
         ("topology", Str "a - g1..g4 - b");
         ("datagrams", Int datagrams);
         ("disabled", mode_json disabled);
         ("metrics", mode_json metrics);
         ("recorder", mode_json recorder);
         ("metrics_sources", Int metrics.snapshot_sources);
         ("e13_fast_dps", Float e13_best);
         ("e13_regression_pct", reg e13_reg);
         ("e14_fast_sps", Float e14_best);
         ("e14_regression_pct", reg e14_reg);
         ("regression_budget_pct", Float regression_budget_pct) ])
