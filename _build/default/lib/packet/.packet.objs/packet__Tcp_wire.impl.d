lib/packet/tcp_wire.ml: Addr Bytes Checksum Format Int32 Printf Stdext String
