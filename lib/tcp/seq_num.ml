type t = int

let modulus = 0x1_0000_0000

let add a n = (a + n) land (modulus - 1) [@@fastpath]

(* Signed distance: reduce mod 2^32 into [-2^31, 2^31). *)
let diff a b =
  let d = (a - b) land (modulus - 1) in
  if d >= modulus / 2 then d - modulus else d
[@@fastpath]

let lt a b = diff a b < 0 [@@fastpath]
let le a b = diff a b <= 0 [@@fastpath]
let gt a b = diff a b > 0 [@@fastpath]
let ge a b = diff a b >= 0 [@@fastpath]

let max a b = if ge a b then a else b [@@fastpath]

let in_window x ~base ~size =
  let d = diff x base in
  d >= 0 && d < size
[@@fastpath]
