.PHONY: all build test check bench bench-smoke gauntlet-smoke clean

all: build

build:
	dune build

test:
	dune runtest

check:
	bin/check.sh

bench:
	dune exec bench/main.exe

# Scaled-down pass over every experiment: proves the benches still build
# and run in seconds, without overwriting the real BENCH_*.json numbers.
bench-smoke:
	dune exec bench/main.exe -- --smoke --out=_smoke

# The E16 survivability gauntlet alone, scaled down: fault injection,
# reconvergence measurement and the replay-determinism check end to end.
gauntlet-smoke:
	dune exec bench/main.exe -- --smoke --only E16 --out=_smoke

clean:
	dune clean
