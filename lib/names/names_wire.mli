(** The name protocol's wire format: one 20-byte fixed message.

    DNS's variable-length labels and compression pointers are where its
    parsers historically bled; this protocol keeps the three-level
    hierarchy (root -> region -> host) but encodes each label as a
    fixed-width 16-bit integer, so a message is a single bounded read
    and the whole format is one catenet-lint-checked [layout] table. *)

val header_size : int
(** 20 bytes; a message is exactly the header, no payload. *)

val layout : (string * int * int) list
(** [(field, offset, width)] — the machine-checked wire contract. *)

(** {2 Query types} *)

val qtype_deleg : int
(** 0 — a referral (delegation) record: the answer names the server
    authoritative for the queried name's region.  Never sent in a
    query; carried in referral responses and used as the cache key
    pseudo-type for cached delegations. *)

val qtype_host : int
(** 1 — resolve labels (region, host, 0) to the host's address. *)

val qtype_svc : int
(** 2 — resolve labels (service, 0, 0) to a replica address (anycast:
    which replica depends on who asks and who is healthy). *)

(** {2 Response codes} *)

val rcode_ok : int

val rcode_nxname : int
(** The name does not exist (cacheable). *)

val rcode_servfail : int
(** Resolution failed upstream (not cached). *)

val rcode_refused : int
(** Recursion refused (RD to a pure authority). *)

val rcode_referral : int
(** A non-terminal answer: [answer] is the next server to ask. *)

type t = {
  id : int;  (** Query/response correlation, 16 bits. *)
  response : bool;
  rd : bool;  (** Recursion desired: client -> resolver queries only. *)
  aa : bool;  (** Authoritative answer. *)
  rcode : int;
  qtype : int;
  l0 : int;  (** First label: region (host names) or service id. *)
  l1 : int;  (** Second label: host index within the region. *)
  l2 : int;  (** Third label: spare (always 0 today). *)
  ttl_s : int;  (** Seconds the answer may be cached; 0 on queries. *)
  answer : int;  (** Address bits (or referral server bits); 0 on queries. *)
}

type error = [ `Truncated | `Bad_header of string ]

val pp_error : Format.formatter -> error -> unit

val query : id:int -> rd:bool -> qtype:int -> l0:int -> l1:int -> l2:int -> t

val response : of_:t -> aa:bool -> rcode:int -> ttl_s:int -> answer:int -> t
(** A response echoing the query's id, qtype and labels. *)

val encode : t -> bytes
(** @raise Invalid_argument when a field is out of its wire range. *)

val decode : bytes -> (t, error) result

val answer_addr : t -> Packet.Addr.t
val addr_bits : Packet.Addr.t -> int
val rcode_to_string : int -> string
val pp : Format.formatter -> t -> unit
