lib/stdext/bytio.ml: Bytes Int32
