lib/routing/rt_msg.mli: Format Packet
