type t =
  | Link_set of { link : Netsim.link_id; up : bool }
  | Node_set of { node : Netsim.node_id; up : bool }

let pp fmt = function
  | Link_set { link; up } ->
      Format.fprintf fmt "link %d %s" link (if up then "up" else "down")
  | Node_set { node; up } ->
      Format.fprintf fmt "node %d %s" node
        (if up then "restore" else "crash")

let to_string f = Format.asprintf "%a" pp f

let to_json = function
  | Link_set { link; up } ->
      Trace.Json.Obj
        [ ("fault", Trace.Json.Str "link_set");
          ("link", Trace.Json.Int link); ("up", Trace.Json.Bool up) ]
  | Node_set { node; up } ->
      Trace.Json.Obj
        [ ("fault", Trace.Json.Str "node_set");
          ("node", Trace.Json.Int node); ("up", Trace.Json.Bool up) ]
