lib/core/internet.ml: Array Bytes Engine Hashtbl Int Ip List Netsim Option Packet Queue Routing Stdext Tcp Udp
