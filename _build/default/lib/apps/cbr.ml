module Samples = Stdext.Stats.Samples

let packet_overhead = 8

type sink = {
  s_eng : Engine.t;
  s_deadline : int;
  mutable s_received : int;
  mutable s_max_seq : int;
  mutable s_dup : int;
  mutable s_reordered : int;
  mutable s_misses : int;
  s_seen : (int, unit) Hashtbl.t;
  s_delay : Samples.t;
}

type sink_report = {
  received : int;
  lost : int;
  delay : Samples.t;
  deadline_misses : int;
  duplicates : int;
  reordered : int;
}

let sink udp ~port ~deadline_us =
  let eng = Ip.Stack.engine (Udp.stack udp) in
  let s =
    {
      s_eng = eng;
      s_deadline = deadline_us;
      s_received = 0;
      s_max_seq = -1;
      s_dup = 0;
      s_reordered = 0;
      s_misses = 0;
      s_seen = Hashtbl.create 256;
      s_delay = Samples.create ();
    }
  in
  let recv ~src:_ ~src_port:_ payload =
    if Bytes.length payload >= packet_overhead then begin
      let seq = Int32.to_int (Bytes.get_int32_be payload 0) in
      let ts = Int32.to_int (Bytes.get_int32_be payload 4) land 0xFFFFFFFF in
      if Hashtbl.mem s.s_seen seq then s.s_dup <- s.s_dup + 1
      else begin
        Hashtbl.add s.s_seen seq ();
        s.s_received <- s.s_received + 1;
        if seq < s.s_max_seq then s.s_reordered <- s.s_reordered + 1;
        s.s_max_seq <- max s.s_max_seq seq;
        (* Timestamps are the low 32 bits of engine time; unwrap against
           now (runs are far shorter than 2^32 us anyway). *)
        let now = Engine.now eng in
        let delay = (now - ts) land 0xFFFFFFFF in
        Samples.add s.s_delay (Engine.to_sec delay);
        if delay > s.s_deadline then s.s_misses <- s.s_misses + 1
      end
    end
  in
  ignore (Udp.bind udp ~port ~recv ());
  s

let report s =
  {
    received = s.s_received;
    lost = (if s.s_max_seq < 0 then 0 else s.s_max_seq + 1 - s.s_received);
    delay = s.s_delay;
    deadline_misses = s.s_misses;
    duplicates = s.s_dup;
    reordered = s.s_reordered;
  }

type source = { mutable src_sent : int; src_count : int }

let sent s = s.src_sent
let done_sending s = s.src_sent >= s.src_count

let source udp ~dst ~dst_port ~payload_bytes ~period_us ~count ?tos () =
  let eng = Ip.Stack.engine (Udp.stack udp) in
  let sock = Udp.bind udp ~recv:(fun ~src:_ ~src_port:_ _ -> ()) () in
  let s = { src_sent = 0; src_count = count } in
  let payload_bytes = max packet_overhead payload_bytes in
  let rec tick () =
    if s.src_sent < count then begin
      let buf = Bytes.make payload_bytes '\000' in
      Bytes.set_int32_be buf 0 (Int32.of_int s.src_sent);
      Bytes.set_int32_be buf 4 (Int32.of_int (Engine.now eng land 0xFFFFFFFF));
      ignore (Udp.sendto sock ?tos ~dst ~dst_port buf);
      s.src_sent <- s.src_sent + 1;
      Engine.after eng period_us tick
    end
  in
  Engine.after eng 1 tick;
  s
