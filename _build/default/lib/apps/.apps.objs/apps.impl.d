lib/apps/apps.ml: Bulk Cbr Echo Pattern Reqrep
