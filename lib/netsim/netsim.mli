(** Simulated network substrate: nodes, interfaces and point-to-point links.

    Each link is one "network technology" in the catenet sense: it has its
    own bandwidth, propagation delay, MTU, random loss rate and a bounded
    drop-tail output queue per direction.  The internet layer built on top
    must tolerate whatever combination of these it is handed — that is
    precisely goal 3 of the 1988 paper (variety of networks).

    Failure injection (links and nodes going down and coming back) is the
    substrate for the survivability experiments (goal 1). *)

type node_id = int
type iface = int
(** Interface index, local to a node, assigned densely from 0 as links are
    attached. *)

type link_id = int

(** A link technology profile. *)
type profile = {
  name : string;
  bandwidth_bps : int;  (** Raw bit rate. *)
  delay_us : int;  (** One-way propagation delay. *)
  mtu : int;  (** Largest frame accepted, in bytes. *)
  loss : float;  (** Independent per-frame corruption/loss probability. *)
  queue_capacity : int;  (** Output queue bound, frames per direction. *)
  jitter_us : int;
      (** Uniform random extra propagation delay in [0, jitter_us]; nonzero
          jitter can reorder deliveries, which upper layers must tolerate. *)
}

val profile :
  ?bandwidth_bps:int ->
  ?delay_us:int ->
  ?mtu:int ->
  ?loss:float ->
  ?queue_capacity:int ->
  ?jitter_us:int ->
  string ->
  profile
(** Profile with defaults: 10 Mb/s, 1 ms, MTU 1500, no loss, queue 32, no
    jitter. *)

(** Ready-made technologies spanning the range the paper lists (§5):
    LANs, long-haul lines, satellite, slow serial, lossy radio. *)
module Profiles : sig
  val ethernet : profile  (** 10 Mb/s LAN, 0.1 ms, MTU 1500. *)

  val arpanet_trunk : profile  (** 56 kb/s long-haul, 20 ms, MTU 1006. *)

  val satellite : profile  (** 1.5 Mb/s, 250 ms, MTU 1500. *)

  val serial_9600 : profile  (** 9.6 kb/s, 5 ms, MTU 576. *)

  val packet_radio : profile  (** 400 kb/s, 10 ms, MTU 254, 2% loss. *)

  val t1 : profile  (** 1.536 Mb/s, 10 ms, MTU 1500. *)

  val fast_lan : profile  (** 100 Mb/s, 0.05 ms, MTU 1500. *)
end

type t

(** Per-direction link counters, for overhead accounting and experiments. *)
type link_stats = {
  tx_frames : int;  (** Frames fully transmitted. *)
  tx_bytes : int;
  delivered_frames : int;
  drops_queue : int;  (** Tail drops: queue full (congestion). *)
  drops_loss : int;  (** Random-loss drops. *)
  drops_down : int;  (** Sends attempted while link or node down. *)
  drops_mtu : int;  (** Frames larger than the link MTU. *)
}

val create : ?seed:int -> Engine.t -> t
(** Fresh empty network drawing randomness from [seed] (default 42). *)

val engine : t -> Engine.t

val add_node : t -> string -> node_id
val node_count : t -> int
val node_name : t -> node_id -> string

val add_link : t -> profile -> node_id -> node_id -> link_id
(** Connect two nodes, creating one new interface on each.  Self-links are
    rejected. *)

val link_count : t -> int

val iface_count : t -> node_id -> int
val iface_mtu : t -> node_id -> iface -> int
val iface_link : t -> node_id -> iface -> link_id
val peer : t -> node_id -> iface -> node_id * iface
(** The node/interface at the other end of the attached link. *)

val endpoints : t -> link_id -> (node_id * iface) * (node_id * iface)

val set_handler : t -> node_id -> (iface:iface -> bytes -> unit) -> unit
(** Install the frame-reception callback for a node (its network stack). *)

val set_default_handler :
  t -> (node:node_id -> iface:iface -> bytes -> unit) option -> unit
(** Fallback receive path for nodes that have no {!set_handler} callback
    of their own: one shared closure serves an arbitrary population of
    cheap hosts, so attaching the millionth endpoint costs a node record,
    not another closure web.  A per-node handler always wins; [None]
    removes the fallback. *)

val send : t -> node_id -> ?priority:bool -> iface:iface -> bytes -> bool
(** Hand a frame to the interface for transmission.  Returns [false] when
    the frame was dropped immediately (down, queue full, over MTU);
    random in-flight loss still reports [true].  [priority] frames (IP's
    low-delay ToS) are transmitted before queued ordinary frames — the
    per-link half of the type-of-service story. *)

(** {1 Failure injection} *)

val set_link_up : t -> link_id -> bool -> unit
(** Taking a link down discards everything queued and in flight on it. *)

val link_is_up : t -> link_id -> bool

val set_node_up : t -> node_id -> bool -> unit
(** A down node neither sends nor receives; frames addressed to it are
    lost.  Bringing it back does not restore any state — state recovery is
    the stacks' problem (fate-sharing). *)

val node_is_up : t -> node_id -> bool

val link_between : t -> node_id -> node_id -> link_id option
(** First link directly connecting the two nodes, if any. *)

(** {1 Accounting} *)

val link_stats : t -> link_id -> link_stats
(** Summed over both directions. *)

val total_stats : t -> link_stats
(** Summed over every link. *)

val queue_length : t -> link_id -> int
(** Frames currently queued, both directions. *)

(** {1 Observability} *)

val set_link_tap :
  t -> link_id -> (dir:int -> bytes -> unit) option -> unit
(** Attach (or detach, with [None]) a frame observer to a link.  The tap
    fires at transmission completion — the sender's wire, before the
    random-loss draw — once per frame, with [dir] 0 for a->b and 1 for
    b->a.  Used by [Internet.pcap_link] for packet capture. *)

val link_metrics_items :
  t -> link_id -> unit -> (string * Trace.Metrics.value) list
(** Pull-based metrics source over {!link_stats}, for
    [Trace.Metrics.register]. *)

val total_metrics_items : t -> unit -> (string * Trace.Metrics.value) list
(** Same over {!total_stats}. *)
