(** TCP segment wire format (RFC 793), with the MSS (RFC 1122), window
    scale (RFC 7323), SACK-permitted and SACK (RFC 2018) options.

    Sequence and acknowledgment numbers are represented as non-negative
    OCaml ints in [\[0, 2^32)]; modular comparison lives in the TCP
    library's [Seq] module. *)

type flags = {
  urg : bool;
  ack : bool;
  psh : bool;
  rst : bool;
  syn : bool;
  fin : bool;
}

val no_flags : flags

val flags :
  ?urg:bool ->
  ?ack:bool ->
  ?psh:bool ->
  ?rst:bool ->
  ?syn:bool ->
  ?fin:bool ->
  unit ->
  flags

val pp_flags : Format.formatter -> flags -> unit
(** Compact "S", "SA", "FA", "R"… notation. *)

type t = {
  src_port : int;
  dst_port : int;
  seq : int;  (** [\[0, 2^32)]. *)
  ack_n : int;  (** Acknowledgment number, meaningful when [flags.ack]. *)
  flags : flags;
  window : int;  (** Advertised receive window field, 16 bits (unscaled). *)
  urgent : int;
  mss : int option;  (** MSS option, normally only on SYN segments. *)
  wscale : int option;
      (** Window scale shift (RFC 7323), only meaningful on SYN segments;
          encoded alongside MSS in the canonical SYN option block. *)
  sack_permitted : bool;
      (** SACK-permitted option (RFC 2018), only meaningful on SYN
          segments. *)
  sack : (int * int) list;
      (** SACK blocks as [(left, right)] sequence-number edges (right edge
          exclusive), at most 4; never on SYN segments — a segment cannot
          carry both SYN options and SACK blocks. *)
  payload : bytes;
}

val make :
  ?seq:int ->
  ?ack_n:int ->
  ?flags:flags ->
  ?window:int ->
  ?urgent:int ->
  ?mss:int option ->
  ?wscale:int option ->
  ?sack_permitted:bool ->
  ?sack:(int * int) list ->
  ?payload:bytes ->
  src_port:int ->
  dst_port:int ->
  unit ->
  t

val max_sack_blocks : int
(** 4: as many (left, right) pairs as fit a 40-byte option area. *)

type error = [ `Truncated | `Bad_checksum | `Bad_header of string ]

val pp_error : Format.formatter -> error -> unit

val encode : src:Addr.t -> dst:Addr.t -> t -> bytes
(** Serialize with the checksum computed over the RFC 793 pseudo-header.
    The addresses are those of the enclosing IP datagram.
    @raise Invalid_argument if a field is out of range, if [sack] holds
    more than {!max_sack_blocks} blocks, or if SACK blocks are combined
    with SYN-only options (MSS / wscale / SACK-permitted). *)

val decode : src:Addr.t -> dst:Addr.t -> bytes -> (t, error) result

val header_size : t -> int
(** Bytes of TCP header this segment carries on the wire: 20 bare, 24
    with the lone MSS option, 32 with the canonical SYN option block
    (MSS + wscale + SACK-permitted), 20 + 4 + 8·blocks with SACK. *)

val header_bytes :
  ?wscale:int option ->
  ?sack_permitted:bool ->
  ?sack:(int * int) list ->
  mss:int option ->
  unit ->
  int
(** {!header_size} from the option set alone, for sizing an
    {!encode_into} buffer before the segment exists. *)

val layout : (string * int * int) list
(** [(field, offset, width)] wire contract, machine-checked by
    catenet-lint: fixed header plus the historical 4-byte MSS option
    block. *)

val syn_opts_layout : (string * int * int) list
(** Wire contract for the canonical 12-byte SYN option block: MSS,
    window scale (or NOP padding), SACK-permitted (or NOP padding). *)

val sack_opts_layout : (string * int * int) list
(** Wire contract for the NOP-NOP-SACK option block carrying up to
    {!max_sack_blocks} (left, right) edges. *)

val encode_into :
  src:Addr.t ->
  dst:Addr.t ->
  src_port:int ->
  dst_port:int ->
  seq:int ->
  ack_n:int ->
  flags:flags ->
  window:int ->
  ?urgent:int ->
  ?mss:int option ->
  ?wscale:int option ->
  ?sack_permitted:bool ->
  ?sack:(int * int) list ->
  payload_len:int ->
  bytes ->
  pos:int ->
  int
(** Allocation-free {!encode}: the payload must already occupy
    [pos + header_bytes ... .. pos + header_bytes ... + payload_len) in
    the buffer; the header is written around it and the checksum computed
    over the whole segment in one pass.  Returns the total segment length.
    Output is byte-for-byte identical to {!encode}. *)

val peek : src:Addr.t -> dst:Addr.t -> ?pos:int -> bytes -> (int, error) result
(** Validate length, data offset and checksum — everything {!decode}
    checks — without allocating a [t]; returns the data offset (payload
    start, relative to the segment).  [pos] (default 0) is where the
    segment begins in the buffer, so a whole IP frame can be peeked
    without first carving the TCP payload out of it.  Combined with the
    [peek_*] accessors this lets a receive fast path read header fields
    in place. *)

val of_peeked : bytes -> data_offset:int -> (t, error) result
(** Finish a {!peek} into a full [t] (option parse + payload copy); the
    checksum is not re-validated.  [decode = peek >>= of_peeked]. *)

val peek_src_port : ?pos:int -> bytes -> int
val peek_dst_port : ?pos:int -> bytes -> int
val peek_seq : ?pos:int -> bytes -> int
val peek_ack_n : ?pos:int -> bytes -> int
val peek_window : ?pos:int -> bytes -> int

val peek_flag_bits : ?pos:int -> bytes -> int
(** Low six flag bits of the offset/flags word: URG 0x20, ACK 0x10,
    PSH 0x08, RST 0x04, SYN 0x02, FIN 0x01.  A predictable segment in the
    header-prediction sense is [0x10] (pure ACK) or [0x18] (ACK|PSH). *)

val pp : Format.formatter -> t -> unit
