lib/core/catenet.ml: Apps Engine Internet Ip Netsim Packet Routing Tcp Udp Vc
