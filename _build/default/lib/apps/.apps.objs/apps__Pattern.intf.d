lib/apps/pattern.mli:
