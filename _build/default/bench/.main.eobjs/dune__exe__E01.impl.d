bench/e01.ml: Apps Array Bytes Catenet Engine Internet List Netsim Printf Routing Util Vc
