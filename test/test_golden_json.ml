(* Golden serialization (replay determinism): the JSON artifacts the
   bench harness diffs across runs must be byte-identical however the
   underlying hash tables were populated.  Metrics sources and keys come
   out sorted; accounting flow lists break byte-count ties on the flow
   identity, never on ledger iteration order. *)

open Catenet
module Addr = Packet.Addr
module Ipv4 = Packet.Ipv4
module Acct = Ip.Accounting
module Metrics = Trace.Metrics
module Json = Trace.Json

let check = Alcotest.check

let golden_metrics =
  {|{
  "alpha": {
    "m_gauge": 0.5000
  },
  "zebra": {
    "a_count": 2,
    "z_count": 1
  }
}|}

let test_metrics () =
  let mk order =
    let m = Metrics.create () in
    List.iter
      (fun (name, items) -> Metrics.register m name (fun () -> items))
      order;
    Json.to_string (Metrics.to_json m)
  in
  let zebra =
    ("zebra", [ ("z_count", Metrics.Int 1); ("a_count", Metrics.Int 2) ])
  and alpha = ("alpha", [ ("m_gauge", Metrics.Float 0.5) ]) in
  let j = mk [ zebra; alpha ] in
  check Alcotest.string "registration order is invisible"
    (mk [ alpha; zebra ]) j;
  check Alcotest.string "golden snapshot" golden_metrics j

let golden_ledger =
  {|{
  "mode": "exact",
  "epoch": 0,
  "flow_count": 3,
  "total_packets": 3,
  "total_bytes": 560,
  "flows": [
    {
      "flow": "10.0.0.5:1002 -> 10.0.0.6:80 udp",
      "packets": 1,
      "bytes": 320
    },
    {
      "flow": "10.0.0.1:1000 -> 10.0.0.2:80 udp",
      "packets": 1,
      "bytes": 120
    },
    {
      "flow": "10.0.0.3:1001 -> 10.0.0.4:80 udp",
      "packets": 1,
      "bytes": 120
    }
  ],
  "history": []
}|}

let record_one t (s, d, sp, dp, len) =
  let h =
    Ipv4.make_header ~proto:Ipv4.Proto.Udp
      ~src:(Addr.of_int32 (Int32.of_int s))
      ~dst:(Addr.of_int32 (Int32.of_int d))
      ()
  in
  let payload = Bytes.make len '\000' in
  Bytes.set_uint16_be payload 0 sp;
  Bytes.set_uint16_be payload 2 dp;
  Acct.record t h ~payload ~wire_bytes:(len + 20)

let test_accounting () =
  (* The first two flows tie on bytes: only the flow-identity tie-break
     keeps their report order independent of ledger iteration order. *)
  let pkts =
    [ (0x0A000001, 0x0A000002, 1000, 80, 100);
      (0x0A000003, 0x0A000004, 1001, 80, 100);
      (0x0A000005, 0x0A000006, 1002, 80, 300) ]
  in
  let run order =
    let t = Acct.create () in
    List.iter (record_one t) order;
    Json.to_string (Acct.to_json t)
  in
  let j = run pkts in
  check Alcotest.string "insertion order is invisible" (run (List.rev pkts)) j;
  check Alcotest.string "golden ledger" golden_ledger j

let () =
  Alcotest.run "golden_json"
    [ ( "golden",
        [ Alcotest.test_case "metrics snapshot sorted" `Quick test_metrics;
          Alcotest.test_case "accounting ledger total order" `Quick
            test_accounting ] ) ]
