(* Typedtree (.cmt) rules of catenet-lint.

   These rules need type information, which dune's default -bin-annot
   output provides for free:

     polycmp   - no polymorphic comparison (=, <>, compare, <, ...) on
                 Addr.t, bytes, or wire header types: structural
                 comparison on those either lies (abstract equality) or
                 walks payload bytes on the hot path.
     match     - no catch-all [_] arms over Event.t, Fault.t or
                 drop_reason: adding a constructor must break every
                 dispatch site at compile time, not silently fall
                 through.
     partial   - no partial application inside [@@fastpath] spans (a
                 partial application allocates a closure the syntactic
                 rule cannot see).

   Spans for the partial rule come from the Parsetree pass
   ({!Lint_source.ctx.fastpath_spans}). *)

open Typedtree
open Lint_common

let poly_compare_names =
  [ "Stdlib.="; "Stdlib.<>"; "Stdlib.=="; "Stdlib.!="; "Stdlib.<";
    "Stdlib.<="; "Stdlib.>"; "Stdlib.>="; "Stdlib.compare" ]

(* (module, type) suffixes banned under polymorphic comparison *)
let polycmp_banned parts =
  match List.rev parts with
  | "bytes" :: _ -> true
  | t :: m :: _ ->
      List.mem (m, t)
        [ ("Addr", "t"); ("Ipv4", "header"); ("Tcp_wire", "t");
          ("Tcp_wire", "flags"); ("Udp_wire", "t"); ("Icmp_wire", "t") ]
  | _ -> false

(* type suffixes that must never be dispatched through a wildcard *)
let match_banned parts =
  match List.rev parts with
  | "drop_reason" :: _ -> true
  | t :: m :: _ -> List.mem (m, t) [ ("Event", "t"); ("Fault", "t") ]
  | _ -> false

let head_type_parts ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Some (split_path_name (Path.name p))
  | _ -> None

let rec is_catch_all : type k. k general_pattern -> bool =
 fun p ->
  match p.pat_desc with
  | Tpat_any -> true
  | Tpat_var _ -> true
  | Tpat_alias (p, _, _) -> is_catch_all p
  | Tpat_or (a, b, _) -> is_catch_all a || is_catch_all b
  | Tpat_value v -> is_catch_all (v :> pattern)
  | _ -> false

let is_arrow ty =
  match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false

let mentions_want_typed e =
  let found = ref false in
  let it =
    { Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.exp_desc with
          | Texp_ident (p, _, _) -> (
              match List.rev (split_path_name (Path.name p)) with
              | ("want" | "enabled") :: _ -> found := true
              | _ -> ())
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it e;
  !found

let exempt attrs = Lint_common.has_attr "fastpath.exempt" attrs

let type_label parts = String.concat "." parts

let check_cmt ~fastpath_spans path =
  match Cmt_format.read_cmt path with
  | exception _ ->
      report ~file:path ~line:1 ~rule:"cmt" "unreadable .cmt file"
  | infos -> (
      match infos.Cmt_format.cmt_annots with
      | Cmt_format.Implementation str ->
          let src =
            Option.value ~default:path infos.Cmt_format.cmt_sourcefile
          in
          let base = Filename.basename src in
          let spans =
            Option.value ~default:[] (Hashtbl.find_opt fastpath_spans base)
          in
          let in_span (loc : Location.t) =
            let l = loc.loc_start.pos_lnum in
            List.exists (fun (a, b) -> l >= a && l <= b) spans
          in
          let report_at (loc : Location.t) rule msg =
            report ~file:src ~line:loc.loc_start.pos_lnum ~rule msg
          in
          let rec iter =
            { Tast_iterator.default_iterator with expr = check_expr }
          and check_expr sub e =
            if exempt e.exp_attributes then ()
            else begin
              (match e.exp_desc with
              | Texp_apply
                  ({ exp_desc = Texp_ident (p, _, _); _ },
                   (_, Some arg1) :: _)
                when List.mem (Path.name p) poly_compare_names -> (
                  match head_type_parts arg1.exp_type with
                  | Some parts when polycmp_banned parts ->
                      report_at e.exp_loc "polycmp"
                        (Printf.sprintf
                           "polymorphic %s on %s (use the module's equal/compare)"
                           (last_exn (split_path_name (Path.name p)))
                           (type_label parts))
                  | _ -> ())
              | Texp_match (scrut, cases, _) -> (
                  match head_type_parts scrut.exp_type with
                  | Some parts when match_banned parts ->
                      List.iter
                        (fun c ->
                          if is_catch_all c.c_lhs then
                            report_at c.c_lhs.pat_loc "match"
                              (Printf.sprintf
                                 "catch-all pattern over %s (enumerate the constructors)"
                                 (type_label parts)))
                        cases
                  | _ -> ())
              | Texp_function { cases; _ } when List.length cases >= 2 ->
                  List.iter
                    (fun c ->
                      match head_type_parts c.c_lhs.pat_type with
                      | Some parts when match_banned parts ->
                          if is_catch_all c.c_lhs then
                            report_at c.c_lhs.pat_loc "match"
                              (Printf.sprintf
                                 "catch-all pattern over %s (enumerate the constructors)"
                                 (type_label parts))
                      | _ -> ())
                    cases
              | _ -> ());
              (match e.exp_desc with
              | Texp_apply (_, _) when in_span e.exp_loc && is_arrow e.exp_type
                ->
                  report_at e.exp_loc "fastpath"
                    "partial application inside [@@fastpath] allocates a closure"
              | _ -> ());
              match e.exp_desc with
              | Texp_ifthenelse (c, _t, eo) when mentions_want_typed c ->
                  sub.Tast_iterator.expr sub c;
                  Option.iter (sub.Tast_iterator.expr sub) eo
              | _ -> Tast_iterator.default_iterator.expr sub e
            end
          in
          iter.Tast_iterator.structure iter str
      | _ -> ())
