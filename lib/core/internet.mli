(** The assembled catenet: hosts and gateways wired over heterogeneous
    links, with addressing, routing and failure injection in one place.

    This is the "realization" layer (Clark §9): the architecture itself —
    datagrams, IP, TCP, UDP — lives in the other libraries; this module
    composes one concrete internet out of them.  Every example and every
    experiment starts here. *)

type routing_mode =
  | Static  (** God-view shortest paths, installed directly. *)
  | Distance_vector
  | Link_state

type host = {
  h_node : Netsim.node_id;
  h_ip : Ip.Stack.t;
  h_udp : Udp.t;
  h_tcp : Tcp.t;
}

type gateway = {
  g_node : Netsim.node_id;
  g_ip : Ip.Stack.t;
  g_udp : Udp.t;
  mutable g_dv : Routing.Dv.t option;
  mutable g_ls : Routing.Ls.t option;
}

type t

val create :
  ?seed:int ->
  ?routing:routing_mode ->
  ?tcp_config:Tcp.config ->
  ?dv_config:Routing.Dv.config ->
  ?ls_config:Routing.Ls.config ->
  unit ->
  t
(** Defaults: seed 42, [Static] routing, stock TCP. *)

val engine : t -> Engine.t
val net : t -> Netsim.t

val add_host : t -> string -> host
val add_gateway : t -> string -> gateway

val host : t -> string -> host
(** Look up by name.  @raise Not_found. *)

val gateway : t -> string -> gateway

val connect : t -> Netsim.profile -> Netsim.node_id -> Netsim.node_id -> Netsim.link_id
(** Link two nodes.  Each link becomes its own /24 network
    ([10.x.y.0/24]); the lower node id gets [.1], the other [.2].
    Connected routes and host default routes are installed immediately. *)

val addr_of : t -> Netsim.node_id -> Packet.Addr.t
(** The node's primary address.  @raise Failure if unconfigured. *)

val addr_on_link : t -> Netsim.link_id -> Netsim.node_id -> Packet.Addr.t
(** The node's address on a specific link. *)

val start : t -> unit
(** Finalize: install static routes, or start the routing protocols on
    every gateway (with neighbor relations derived from the topology). *)

val run_for : t -> float -> unit
(** Advance the simulation by the given number of seconds. *)

val run_until_idle : ?max_events:int -> t -> unit

(** {1 Failure injection} *)

val fail_link : t -> Netsim.link_id -> unit
val heal_link : t -> Netsim.link_id -> unit

val crash_node : t -> Netsim.node_id -> unit
(** Power off *with amnesia*: the node stops sending and receiving, and
    if it is a gateway its soft state dies with it — route cache,
    learned routes, DV RIB, LS database and adjacencies, reassembly
    buffers.  Only configuration survives to {!restore_node}.  Nothing a
    TCP conversation depends on lives there (fate-sharing, Clark goal
    1), which the E16 gauntlet asserts end to end.  Hosts lose nothing:
    they are where the hard state lives. *)

val restore_node : t -> Netsim.node_id -> unit
(** Reboot.  Under [Static] routing the tables are recomputed (static
    routes are configuration); under [Distance_vector]/[Link_state] the
    reborn gateway re-learns the catenet from its neighbors. *)

val chaos_env : t -> Chaos.env
(** Environment for {!Chaos.inject} whose crash/restore hooks carry
    this module's soft-state crash semantics. *)

val recompute_static : t -> unit
(** Re-derive god-view routes (only meaningful in [Static] mode, e.g.
    after failing a link). *)

(** {1 Conveniences} *)

val ping :
  t -> from:host -> Packet.Addr.t -> count:int -> interval_us:int ->
  Stdext.Stats.Samples.t
(** Fire-and-collect ICMP echo: returns the samples collector, which
    fills in as the simulation runs. *)

type hop_report = {
  hop_ttl : int;
  hop_addr : Packet.Addr.t option;  (** Reporting gateway, [None] = no reply. *)
  hop_rtt : float option;  (** Seconds. *)
  hop_reached : bool;  (** The probe reached the destination itself. *)
}

val traceroute :
  t -> from:host -> Packet.Addr.t -> ?max_ttl:int -> unit -> hop_report list ref
(** Classic TTL sweep using ICMP echo probes: gateway k answers the TTL-k
    probe with time-exceeded, the destination with an echo reply.  The
    returned list fills in (ordered by TTL) as the simulation runs. *)

val link_subnet : t -> Netsim.link_id -> Packet.Addr.Prefix.t

(** {1 Observability} *)

val metrics : t -> Trace.Metrics.t
(** A fresh registry wired to every live counter in this internetwork:
    per-node IP stack counters (source [ip.<name>]), TCP and UDP instance
    stats ([tcp.<name>], [udp.<name>]), per-link and aggregate link stats
    ([link.<id>], [links.total]) and per-node accounting summaries
    ([accounting.<name>], empty until accounting is enabled).  Sources
    read live state: build the registry once and snapshot at will. *)

val metrics_json : t -> Trace.Json.t
(** [Trace.Metrics.to_json (metrics t)], plus the full per-flow
    accounting ledgers under ["accounting_flows"] for any stack with
    accounting enabled — the single-call JSON export of everything the
    simulation counts. *)

val pcap_link : t -> Netsim.link_id -> Trace.Pcap.t
(** Attach a capture to one link; every frame transmitted on it (either
    direction, including frames subsequently lost in flight) is recorded
    with the virtual-clock timestamp.  Read the capture out with
    [Trace.Pcap.write_file] after running. *)

val pcap_all_links : t -> Trace.Pcap.t
(** One merged capture tapping every link created through {!connect}. *)
