(** Measurement accumulators for experiment metrics.

    [Summary] keeps O(1) running moments (count/mean/variance/min/max);
    [Samples] additionally retains every observation so that exact
    percentiles (median, p95, p99 latency, jitter) can be reported, which
    the experiments need for service-quality tables. *)

module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; 0 with fewer than two observations. *)

  val stddev : t -> float
  val min : t -> float
  (** +inf when empty. *)

  val max : t -> float
  (** -inf when empty. *)

  val total : t -> float
end

module Samples : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val percentile : t -> float -> float
  (** [percentile t p] for [p] in [\[0,100\]], by linear interpolation
      between closest ranks; 0 when empty. *)

  val median : t -> float
  val min : t -> float
  val max : t -> float

  val jitter : t -> float
  (** Mean absolute difference of consecutive observations (RFC 3550-style
      inter-arrival jitter over the recorded sequence); 0 with fewer than
      two samples. *)
end
