(* E17 — Internet-scale topology: aggregated routing at 10^4..10^5 hosts.

   The paper's §6 regions argument, measured: a transit core that knows
   one aggregated /20 per stub region (never a host route) forwards
   sustained cross-region traffic at the same per-packet budget as E13's
   8-node chain, while carrying 1000x the endpoints.  Leaf hosts are
   pooled (Hostpool) and the per-gateway tables sit on the LPM trie, so
   neither host count nor table size shows up in the per-datagram cost.

   We run E13's fast path in-process first and report this topology's
   figures as ratios against it — same machine, same build, so the
   committed BENCH_topology.json carries a machine-independent contract:
   datagrams/s within 20% of the small topology, words/packet within
   20%.  A second, jumbo build at 10^5 hosts checks that construction,
   aggregation and delivery still hold one order of magnitude up. *)

open Catenet
module Addr = Packet.Addr

let full_datagrams = 50_000
let payload_size = 1_400
let pace_us = 15 (* aggregate injection, spread round-robin over senders *)
let senders = 64

let main_cfg =
  { Topo.default_config with
    Topo.core = 8; chords = 4; regions = 100; hosts_per_region = 100 }

let jumbo_cfg =
  { Topo.default_config with
    Topo.core = 16; chords = 8; regions = 250; hosts_per_region = 400 }

type outcome = {
  dps : float;
  words_per_pkt : float;
  hosts : int;
  core_table_max : int;
  route_total : int;
}

(* Sustained cross-region load: [senders] flows, sender k in region
   k*stride talking to a host half the catenet away, one datagram
   injected every [pace_us] round-robin across the flows — the aggregate
   rate matches E13's single flow, the paths spread over the whole
   core. *)
let run_topo cfg ~datagrams =
  let t = Topo.build cfg in
  let pool = Topo.pool t in
  let nregions = Topo.regions t in
  let nhosts = Topo.hosts_per_region t in
  let flows =
    Array.init senders (fun k ->
        let src_r = k * nregions / senders in
        let dst_r = (src_r + (nregions / 2)) mod nregions in
        ( Topo.host_slot t ~region:src_r ~index:(k mod nhosts),
          Topo.host_addr t ~region:dst_r ~index:((k + 7) mod nhosts) ))
  in
  let eng = Topo.engine t in
  let payload = Bytes.make payload_size 'e' in
  let rec send_next i =
    if i < datagrams then begin
      let slot, dst = flows.(i mod senders) in
      if not (Hostpool.send pool slot ~dst payload) then
        failwith "E17: send refused at the interface";
      Engine.after eng pace_us (fun () -> send_next (i + 1))
    end
  in
  Engine.after eng 1 (fun () -> send_next 0);
  let alloc0 = Gc.allocated_bytes () in
  let wall0 = Unix.gettimeofday () in
  Engine.run eng;
  let wall = Unix.gettimeofday () -. wall0 in
  let alloc = Gc.allocated_bytes () -. alloc0 in
  if Hostpool.rx_total pool <> datagrams then
    failwith
      (Printf.sprintf "E17: delivered %d of %d datagrams"
         (Hostpool.rx_total pool) datagrams);
  if Hostpool.rx_stray pool <> 0 then
    failwith
      (Printf.sprintf "E17: %d frames went astray" (Hostpool.rx_stray pool));
  {
    dps = float_of_int datagrams /. wall;
    words_per_pkt = alloc /. 8.0 /. float_of_int datagrams;
    hosts = nregions * nhosts;
    core_table_max = Topo.core_table_max t;
    route_total = Topo.route_entries_total t;
  }

let write_json ~baseline ~main ~jumbo ~datagrams ~dps_ratio ~words_ratio =
  let open Trace.Json in
  let outcome (o : outcome) =
    Obj
      [ ("hosts", Int o.hosts);
        ("datagrams_per_sec", Float o.dps);
        ("words_per_packet", Float o.words_per_pkt);
        ("core_table_max", Int o.core_table_max);
        ("route_entries_total", Int o.route_total) ]
  in
  Util.write_json "BENCH_topology.json"
    (Obj
       [ ("experiment", Str "E17");
         ("datagrams", Int datagrams);
         ("payload_bytes", Int payload_size);
         ("e13_baseline",
          Obj
            [ ("datagrams_per_sec", Float baseline.E13.dps);
              ("words_per_packet", Float baseline.E13.words_per_pkt) ]);
         ("topology", outcome main);
         ("jumbo", outcome jumbo);
         ("dps_vs_e13_pct", Float (100.0 *. dps_ratio));
         ("words_vs_e13_pct", Float (100.0 *. words_ratio));
         ("dps_floor_pct", Float 80.0);
         ("words_ceiling_pct", Float 120.0) ])

let run () =
  Util.banner "E17" "internet-scale topology"
    "aggregated per-region prefixes keep 10^4..10^5-host forwarding \
     within 20% of E13's 8-node chain";
  let datagrams = Util.scaled full_datagrams in
  let baseline = E13.run_once ~fast:true ~datagrams in
  let main = run_topo main_cfg ~datagrams in
  let jumbo = run_topo jumbo_cfg ~datagrams:(Util.scaled 5_000) in
  let dps_ratio = main.dps /. baseline.E13.dps in
  let words_ratio = main.words_per_pkt /. baseline.E13.words_per_pkt in
  Util.table
    [ "topology"; "hosts"; "datagrams/s"; "words/packet"; "max core table" ]
    [
      [ "E13 chain (baseline)"; "2"; Printf.sprintf "%.0f" baseline.E13.dps;
        Printf.sprintf "%.1f" baseline.E13.words_per_pkt; "-" ];
      [ "regions 100x100"; string_of_int main.hosts;
        Printf.sprintf "%.0f" main.dps;
        Printf.sprintf "%.1f" main.words_per_pkt;
        string_of_int main.core_table_max ];
      [ "jumbo 250x400"; string_of_int jumbo.hosts;
        Printf.sprintf "%.0f" jumbo.dps;
        Printf.sprintf "%.1f" jumbo.words_per_pkt;
        string_of_int jumbo.core_table_max ];
    ];
  Util.note
    "throughput %.0f%% of E13, words/packet %.0f%%; %d routes total at %d \
     hosts (max core table %d)"
    (100.0 *. dps_ratio) (100.0 *. words_ratio) main.route_total main.hosts
    main.core_table_max;
  write_json ~baseline ~main ~jumbo ~datagrams ~dps_ratio ~words_ratio
