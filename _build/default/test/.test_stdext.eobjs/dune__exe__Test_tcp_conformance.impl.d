test/test_tcp_conformance.ml: Alcotest Buffer Bytes Engine Ip Netsim Option Packet Tcp
