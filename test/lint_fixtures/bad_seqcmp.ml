(* Deliberately broken: raw comparisons and subtraction on circular TCP
   sequence numbers, plus an absolute-timestamp/duration mixup.  (Local
   Engine stub: the pass matches the [Engine.now] path in the cmt.) *)
module Engine = struct
  let now _eng = 0
end

type conn = { mutable snd_una : int; mutable rcv_nxt : int }

let acked c ack = ack > c.snd_una
let in_order c seq = seq <= c.rcv_nxt
let in_flight c = c.snd_una - 1
let deadline_passed eng = Engine.now eng > 5_000_000
